"""The client contract: what an analysis supplies to the framework.

An :class:`AnalysisClient` packages one interprocedural dataflow
problem: the lattice, the entry keys per flow node, the seed
environment and roots, and a :class:`FlowIndex` of
:class:`FlowEdge` transfers. :func:`repro.framework.engine.solve_client`
runs the shared seed/delta/flush fixed-point discipline over that
package — the same scheduler the constant-propagation pipeline uses.

A :class:`FlowEdge` is the generic twin of
:class:`repro.core.engine.BindingEdge`: one (site, target key) transfer
whose function reads the ``source`` node's environment. The structural
fast-path fields (``const``, ``passthrough``) are derived from the edge
function at construction so the engine's hot loop never virtual-calls
for constants or identities — the exact hoisting stage 2 applies to
jump functions. The field names ``caller``/``callee`` are kept from the
binding edge (caller = flow source, callee = flow target) so the
:class:`repro.core.engine.RegionPartition` splitter works on either
index unchanged; for reverse-flow clients "caller" simply reads as
"flow predecessor".
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.core.engine import RegionPartition, SupportIndex
from repro.framework.edges import EdgeFunction
from repro.framework.graph import FlowGraph
from repro.framework.lattice import Lattice, Value

#: (flow node, entry key) — one node of the generic binding multi-graph.
FlowBinding = tuple[str, object]


@dataclass(frozen=True, slots=True)
class FlowEdge:
    """One (site, target entry key) transfer in a client's flow index."""

    site_id: int
    #: flow source: the node whose environment ``func`` reads.
    caller: str
    #: flow target: the node whose ``key`` the result is met into.
    callee: str
    key: object
    func: EdgeFunction
    #: ``func.support()``, cached — the delta fan-in.
    support: tuple
    #: ``func.constant_value()``, cached — the engine meets it directly.
    const: Value | None
    #: ``func.passthrough_key()``, cached — the engine inlines the fetch.
    passthrough: object | None


def flow_edge(
    site_id: int, source: str, target: str, key: object, func: EdgeFunction
) -> FlowEdge:
    """Build a :class:`FlowEdge`, deriving the fast-path fields."""
    return FlowEdge(
        site_id,
        source,
        target,
        key,
        func,
        func.support(),
        func.constant_value(),
        func.passthrough_key(),
    )


class FlowIndex(SupportIndex):
    """A client's transfer edges in the engine's index shape.

    Subclasses :class:`repro.core.engine.SupportIndex` (the structure is
    identical — ``seeds``/``kills``/``dependents``/``callees`` — only
    the edge type differs), so :class:`~repro.core.engine.RegionPartition`
    splits either kind along region boundaries unchanged.
    """

    @staticmethod
    def build(
        edges: list[FlowEdge],
        kill_sources: dict[str, list[FlowBinding]] | None = None,
    ) -> "FlowIndex":
        """Index ``edges`` by source (seeds), by read key (dependents),
        and by flow successor (callees). ``kill_sources`` maps a source
        node to the (target, key) bindings flooring when that source is
        first visited — the generic form of unbound-callee-key kills
        (requires a lattice with a finite ⊥)."""
        seeds: dict[str, list[FlowEdge]] = defaultdict(list)
        dependents: dict[FlowBinding, list[FlowEdge]] = defaultdict(list)
        callees: dict[str, list[str]] = defaultdict(list)
        for edge in edges:
            seeds[edge.caller].append(edge)
            if edge.callee not in callees[edge.caller]:
                callees[edge.caller].append(edge.callee)
            for support_key in edge.support:
                dependents[(edge.caller, support_key)].append(edge)
        kill_map: dict[str, list[FlowBinding]] = defaultdict(list)
        if kill_sources:
            for source, bindings in kill_sources.items():
                kill_map[source].extend(bindings)
                for target, _ in bindings:
                    if target not in callees[source]:
                        callees[source].append(target)
        return FlowIndex(
            {proc: tuple(items) for proc, items in seeds.items()},
            {proc: tuple(pairs) for proc, pairs in kill_map.items()},
            {binding: tuple(items) for binding, items in dependents.items()},
            {proc: tuple(names) for proc, names in callees.items()},
        )


class AnalysisClient:
    """One interprocedural dataflow problem, packaged for the generic
    driver. Subclasses define the five hooks; everything else — the
    worklist, region scheduling, memoization, budgets, counters — is
    shared framework machinery.
    """

    #: analysis name (CLI surface, stats reports).
    name: str = "client"
    lattice: Lattice

    def entry_keys(self, lowered, graph) -> dict[str, list]:
        """Each flow node's propagated keys (the VAL row shape)."""
        raise NotImplementedError

    def initial_env(self, lowered, graph) -> dict[str, dict]:
        """The seed VAL mapping: usually ⊤ everywhere except the roots'
        boundary facts."""
        keys = self.entry_keys(lowered, graph)
        top = self.lattice.top
        return {node: {key: top for key in node_keys} for node, node_keys in keys.items()}

    def roots(self, lowered, graph) -> tuple[str, ...]:
        """The flow nodes activated first (constprop: the main program;
        MOD/REF: every procedure)."""
        raise NotImplementedError

    def flow_graph(self, lowered, graph):
        """The graph values flow along — the call graph itself by
        default; reverse-flow clients return a
        :class:`~repro.framework.graph.FlowGraph`."""
        return graph

    def flow_edges(self, lowered, graph) -> FlowIndex:
        """The client's transfer edges, indexed."""
        raise NotImplementedError

    def partition(self, lowered, graph, region_of) -> RegionPartition:
        """The flow index split along region boundaries (cached by
        concrete clients when their index is cached)."""
        return RegionPartition(self.flow_edges(lowered, graph), region_of)
