"""Edge functions: the transfer half of a framework client.

An :class:`EdgeFunction` maps a *source environment* (the flow
predecessor's entry-key → value mapping) to one lattice value for one
target key — exactly the shape of the paper's jump functions, which is
what makes the specialized constprop pipeline a client of this
framework rather than a sibling. The IDE-style algebra is provided:

- ``identity(key)`` — the pass-through edge λenv. env[key];
- ``f.compose(bindings)`` — substitution: evaluate ``f`` in an
  environment where each bound key is produced by another edge function
  (how a call-through-call summary edge is built);
- ``f.meet_with(lattice, g)`` — the pointwise meet of two edges (how
  parallel paths into the same target key fold into one function).

The generic engine never calls ``apply`` for the three structural
shapes it can transfer directly — constants, identities, and
support-free bottoms — the same hoisting the specialized
:class:`repro.core.engine.DeltaEngine` applies to
:class:`~repro.core.engine.BindingEdge`. ``memo_token()`` keys the
evaluation memo: edge functions wrapping hash-consed structures (e.g.
:class:`ExprEdge` over interned ``ValueExpr`` trees) return the shared
structure so distinct edges carrying the same function share memo hits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.exprs import ValueExpr
from repro.core.lattice import BOTTOM
from repro.framework.lattice import Lattice, Value


class EdgeFunction:
    """One transfer: source environment → value for one target key."""

    def apply(self, env: Mapping) -> Value:
        raise NotImplementedError

    def support(self) -> tuple:
        """The source keys ``apply`` reads, in deterministic order —
        the environment slice that keys the memo and the delta fan-out."""
        raise NotImplementedError

    def memo_token(self) -> object:
        """Identity token for the evaluation memo. Default: the edge
        function object itself (safe — no sharing); override to return
        a hash-consed inner structure for cross-edge memo sharing."""
        return self

    def constant_value(self) -> Value | None:
        """The folded value when this function ignores its environment,
        else ``None`` (``None`` is reserved: never a lattice value)."""
        return None

    def passthrough_key(self) -> object | None:
        """The single source key this function forwards unchanged, else
        ``None`` — the engine inlines such edges as one env fetch."""
        return None

    @staticmethod
    def identity(key: object) -> "IdentityEdge":
        return IdentityEdge(key)

    def compose(self, bindings: Mapping[object, "EdgeFunction"]) -> "EdgeFunction":
        """Substitution composition: this function evaluated in an
        environment where each key of ``bindings`` is produced by the
        bound edge function (unbound keys read through unchanged)."""
        if not bindings:
            return self
        const = self.constant_value()
        if const is not None:
            return ConstantEdge(const)  # ignores its environment entirely
        through = self.passthrough_key()
        if through is not None:
            inner = bindings.get(through)
            return inner if inner is not None else self
        return SubstitutedEdge(self, dict(bindings))

    def meet_with(self, lattice: Lattice, other: "EdgeFunction") -> "EdgeFunction":
        """The pointwise meet of two edges into the same target key."""
        return MeetEdge(lattice, (self, other))


@dataclass(frozen=True, slots=True)
class ConstantEdge(EdgeFunction):
    """λenv. c — the engine transfers ``value`` by meet alone."""

    value: Value

    def apply(self, env: Mapping) -> Value:
        return self.value

    def support(self) -> tuple:
        return ()

    def constant_value(self) -> Value | None:
        return self.value


@dataclass(frozen=True, slots=True)
class IdentityEdge(EdgeFunction):
    """λenv. env[key] — the pass-through the engine inlines as a fetch."""

    key: object

    def apply(self, env: Mapping) -> Value:
        return env.get(self.key, BOTTOM)

    def support(self) -> tuple:
        return (self.key,)

    def passthrough_key(self) -> object | None:
        return self.key


@dataclass(frozen=True, slots=True)
class BottomEdge(EdgeFunction):
    """λenv. ⊥ — support-free and not constant; the engine applies its
    one floor contribution without ever evaluating it."""

    bottom: Value = BOTTOM

    def apply(self, env: Mapping) -> Value:
        return self.bottom

    def support(self) -> tuple:
        return ()


@dataclass(frozen=True, slots=True)
class ExprEdge(EdgeFunction):
    """A polynomial jump function as an edge: wraps a hash-consed
    :class:`repro.core.exprs.ValueExpr` and shares its identity as the
    memo token, so the framework constprop client's memo behaves like
    the specialized engine's ``id(expr)``-keyed memo."""

    expr: ValueExpr
    keys: tuple

    def apply(self, env: Mapping) -> Value:
        return self.expr.evaluate(env)

    def support(self) -> tuple:
        return self.keys

    def memo_token(self) -> object:
        return self.expr


class SubstitutedEdge(EdgeFunction):
    """``outer`` evaluated through per-key inner edges (composition)."""

    __slots__ = ("outer", "bindings", "_support")

    def __init__(self, outer: EdgeFunction, bindings: dict):
        self.outer = outer
        self.bindings = bindings
        keys: dict = {}
        for key in outer.support():
            inner = bindings.get(key)
            if inner is None:
                keys[key] = None
            else:
                for inner_key in inner.support():
                    keys[inner_key] = None
        self._support = tuple(keys)

    def apply(self, env: Mapping) -> Value:
        inner_env = dict(env)
        for key, inner in self.bindings.items():
            inner_env[key] = inner.apply(env)
        return self.outer.apply(inner_env)

    def support(self) -> tuple:
        return self._support


class MeetEdge(EdgeFunction):
    """The pointwise meet of several edges into one target key."""

    __slots__ = ("lattice", "members", "_support")

    def __init__(self, lattice: Lattice, members: tuple):
        flat: list[EdgeFunction] = []
        for member in members:
            if isinstance(member, MeetEdge) and member.lattice is lattice:
                flat.extend(member.members)
            else:
                flat.append(member)
        self.lattice = lattice
        self.members = tuple(flat)
        keys: dict = {}
        for member in self.members:
            for key in member.support():
                keys[key] = None
        self._support = tuple(keys)

    def apply(self, env: Mapping) -> Value:
        return self.lattice.meet_all(member.apply(env) for member in self.members)

    def support(self) -> tuple:
        return self._support
