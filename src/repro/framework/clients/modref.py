"""MOD/REF side-effect summaries as a reverse-flow dataflow client.

:func:`repro.callgraph.modref.compute_modref` computes Cooper–Kennedy
flow-insensitive summaries by chaotic iteration over call sites. This
client re-derives the same summaries through the generic engine,
demonstrating the two framework capabilities constprop never exercises:

- **reverse flow**: summaries rise from callees to callers, so the
  client schedules over the call graph's mirror image
  (:func:`repro.framework.graph.reverse_flow_graph`) — callee regions
  converge before their callers', the profitable direction for
  summaries (and sound regardless: a late delivery re-queues the
  target region);
- **a lattice with no finite ⊥**: summary sets grow under union
  (:class:`~repro.framework.lattice.PowersetLattice`), so the engine's
  floor short-circuit is inert and termination comes from the finite
  slot universe instead.

Each procedure carries two entry keys, ``"mod"`` and ``"ref"``, valued
by frozensets of storage slots in :func:`~repro.callgraph.modref.classify_symbol`
form. Seeds are the direct (call-free) effects; every procedure is a
root (summaries exist for procedures the main program never calls).
One edge per (call site, summary kind) maps callee slots through the
site's binding: globals rise unchanged, formal effects land on the
caller slot the actual binds — :func:`~repro.callgraph.modref.site_binding_map`,
the *same function* the reference implementation folds sites with, so
the two cannot drift on the binding rule.

:func:`cross_check_modref` compares this client's fixpoint against
``compute_modref`` and reports any divergence as RL140 diagnostics —
a lint-style finding, not a crash, so a discrepancy in the field
surfaces as an actionable report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.callgraph.modref import (
    ModRefInfo,
    compute_modref,
    direct_effects,
    site_binding_map,
)
from repro.diagnostics.core import Diagnostic, Severity, describe_code
from repro.framework.client import AnalysisClient, FlowEdge, FlowIndex
from repro.framework.edges import EdgeFunction
from repro.framework.graph import reverse_flow_graph
from repro.framework.lattice import PowersetLattice

#: the two summary kinds, each one entry key per procedure.
SUMMARY_KEYS = ("mod", "ref")

CODE_DIVERGENCE = describe_code(
    "RL140",
    "framework MOD/REF client diverged from the reference summaries",
)


@dataclass(frozen=True, slots=True)
class SummaryBindEdge(EdgeFunction):
    """Map one callee summary set through one call site's binding:
    global slots rise unchanged, formal slots land where the actual
    binds (or vanish — a literal actual absorbs the effect in a
    temporary the caller never sees)."""

    kind: str
    #: callee formal name -> caller slot, for bindable actuals only.
    binding: tuple

    def apply(self, env: Mapping) -> frozenset:
        source = env.get(self.kind, frozenset())
        if not source:
            return frozenset()
        binding = dict(self.binding)
        mapped = set()
        for slot in source:
            if slot[0] == "global":
                mapped.add(slot)
            else:
                target = binding.get(slot[1])
                if target is not None:
                    mapped.add(target)
        return frozenset(mapped)

    def support(self) -> tuple:
        return (self.kind,)


class ModRefClient(AnalysisClient):
    """MOD/REF summaries over the reversed call graph."""

    name = "modref"
    lattice = PowersetLattice()

    def entry_keys(self, lowered, graph) -> dict[str, list]:
        return {name: list(SUMMARY_KEYS) for name in lowered.procedures}

    def initial_env(self, lowered, graph) -> dict[str, dict]:
        """Each procedure seeded with its direct (call-free) effects;
        empty sets share the lattice's ⊤ singleton so the engine's
        identity fast path still fires."""
        top = self.lattice.top
        return {
            name: {
                "mod": mod or top,
                "ref": ref or top,
            }
            for name, (mod, ref) in direct_effects(lowered).items()
        }

    def roots(self, lowered, graph) -> tuple[str, ...]:
        return tuple(sorted(lowered.procedures))

    def flow_graph(self, lowered, graph):
        return reverse_flow_graph(graph)

    def flow_edges(self, lowered, graph) -> FlowIndex:
        edges: list[FlowEdge] = []
        for site_id in sorted(lowered.call_sites):
            caller, call = lowered.call_sites[site_id]
            binding = tuple(
                sorted(site_binding_map(lowered, call).items())
            )
            for kind in SUMMARY_KEYS:
                func = SummaryBindEdge(kind, binding)
                # flow source = the callee (whose summary is read),
                # flow target = the caller (whose summary absorbs it).
                edges.append(
                    FlowEdge(
                        site_id,
                        call.callee,
                        caller,
                        kind,
                        func,
                        func.support(),
                        None,
                        None,
                    )
                )
        return FlowIndex.build(edges)


def summary_sets(info: ModRefInfo, proc: str) -> dict[str, frozenset]:
    """The reference summaries for ``proc`` in the client's slot form."""
    return {
        "mod": frozenset(
            [("formal", name) for name in info.mod_formals.get(proc, ())]
            + [("global", gid) for gid in info.mod_globals.get(proc, ())]
        ),
        "ref": frozenset(
            [("formal", name) for name in info.ref_formals.get(proc, ())]
            + [("global", gid) for gid in info.ref_globals.get(proc, ())]
        ),
    }


def _format_slots(slots) -> str:
    return (
        "{" + ", ".join(sorted(f"{kind}:{payload}" for kind, payload in slots)) + "}"
    )


def cross_check_modref(
    lowered, graph, result=None, *, info: ModRefInfo | None = None
) -> list[Diagnostic]:
    """Compare the framework client's fixpoint against
    :func:`~repro.callgraph.modref.compute_modref`. Returns RL140
    diagnostics (empty on agreement — the expected outcome); never
    raises on divergence."""
    from repro.framework.engine import solve_client

    if result is None:
        result = solve_client(lowered, graph, ModRefClient())
    if info is None:
        info = compute_modref(lowered, graph)
    findings: list[Diagnostic] = []
    for proc in sorted(lowered.procedures):
        reference = summary_sets(info, proc)
        env = result.val.get(proc, {})
        for kind in SUMMARY_KEYS:
            mine = env.get(kind, frozenset())
            theirs = reference[kind]
            if mine == theirs:
                continue
            findings.append(
                Diagnostic(
                    code="RL140",
                    severity=Severity.ERROR,
                    message=(
                        f"{kind.upper()} summary divergence: framework client "
                        f"found {_format_slots(mine)}, reference found "
                        f"{_format_slots(theirs)}"
                    ),
                    pass_name="modref-crosscheck",
                    procedure=proc,
                )
            )
    return findings
