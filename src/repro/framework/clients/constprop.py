"""Constant propagation as a framework client — the reference client.

The paper's pipeline already produces everything this client needs:
stage 2's :class:`~repro.core.builder.ForwardFunctions` carry one jump
function per (call site, callee entry key), and the stage-2
:class:`~repro.core.engine.SupportIndex` already has them in the
engine's seeds/kills/dependents/callees shape. The client translates
each :class:`~repro.core.engine.BindingEdge` 1:1 into a
:class:`~repro.framework.client.FlowEdge` — preserving tuple order,
support order, hoisted constants, and the interned expression as the
memo token — so the generic engine walks the identical edge sequence,
performs the identical meets, and reaches the identical fixpoint with
the identical counters the specialized solver reports.

``tests/framework/test_client_equivalence.py`` pins that down:
byte-identical VALs (value *and* class, so a LOGICAL ``.true.`` never
passes for an INTEGER ``1``) against both :func:`repro.core.solver.solve`
and :func:`repro.core.solver.solve_dense` across the workload suite and
hypothesis-generated programs.
"""

from __future__ import annotations

from repro.core.builder import ForwardFunctions
from repro.core.engine import BindingEdge, RegionPartition, SupportIndex, entry_keys
from repro.core.exprs import EntryExpr
from repro.core.solver import initial_val
from repro.framework.client import AnalysisClient, FlowEdge, FlowIndex
from repro.framework.edges import BottomEdge, ConstantEdge, ExprEdge, IdentityEdge
from repro.framework.lattice import ConstantLattice

_BOTTOM_EDGE = BottomEdge()


def _translate_edge(edge: BindingEdge) -> FlowEdge:
    """One binding edge as a flow edge, fast-path fields preserved."""
    expr = edge.expr
    if edge.const is not None:
        func = ConstantEdge(edge.const)
    elif expr.__class__ is EntryExpr:
        func = IdentityEdge(expr.key)
    elif edge.support:
        func = ExprEdge(expr, edge.support)
    else:
        func = _BOTTOM_EDGE  # support-free and not constant ⇒ ⊥
    return FlowEdge(
        edge.site_id,
        edge.caller,
        edge.callee,
        edge.key,
        func,
        edge.support,
        edge.const,
        expr.key if expr.__class__ is EntryExpr else None,
    )


def translate_index(index: SupportIndex) -> FlowIndex:
    """The stage-2 support index with every binding edge translated,
    structure and iteration order untouched — the translation is a
    bijection, so seed order, delta fan-out order, and kill order (the
    things the counters and the memo observe) are identical."""
    mapping: dict[int, FlowEdge] = {}

    def translated(edge: BindingEdge) -> FlowEdge:
        flow = mapping.get(id(edge))
        if flow is None:
            flow = mapping[id(edge)] = _translate_edge(edge)
        return flow

    seeds = {
        proc: tuple(translated(edge) for edge in edges)
        for proc, edges in index.seeds.items()
    }
    dependents = {
        binding: tuple(translated(edge) for edge in edges)
        for binding, edges in index.dependents.items()
    }
    return FlowIndex(seeds, dict(index.kills), dependents, dict(index.callees))


class ConstPropClient(AnalysisClient):
    """The 3-level constant lattice + jump functions, as a client."""

    name = "constprop"
    lattice = ConstantLattice()

    def __init__(self, forward: ForwardFunctions):
        self.forward = forward

    def entry_keys(self, lowered, graph) -> dict[str, list]:
        return entry_keys(lowered)

    def initial_env(self, lowered, graph) -> dict[str, dict]:
        return initial_val(lowered)

    def roots(self, lowered, graph) -> tuple[str, ...]:
        return (lowered.program.main,)

    def flow_edges(self, lowered, graph) -> FlowIndex:
        """Translated once per stage-2 index (cached on the forward
        functions, invalidated when the index identity changes — the
        same discipline as the solver's partition cache)."""
        index = self.forward.support_index(lowered)
        cached = getattr(self.forward, "_framework_flow_index", None)
        if cached is not None and cached[0] is index:
            return cached[1]
        flow_index = translate_index(index)
        try:
            self.forward._framework_flow_index = (index, flow_index)
        except AttributeError:
            pass  # slotted stand-ins rebuild per solve
        return flow_index

    def partition(self, lowered, graph, region_of) -> RegionPartition:
        index = self.flow_edges(lowered, graph)
        cached = getattr(self.forward, "_framework_partition", None)
        if cached is not None:
            cached_index, cached_region_of, partition = cached
            if cached_index is index and cached_region_of is region_of:
                return partition
        partition = RegionPartition(index, region_of)
        try:
            self.forward._framework_partition = (index, region_of, partition)
        except AttributeError:
            pass
        return partition
