"""Interprocedural copy propagation — the first genuinely new client.

The intraprocedural :mod:`repro.analysis.copyprop` rewrites ``x = y``
chains inside one procedure. This client generalizes the idea across
call bindings: its lattice refines the 3-level constant lattice with a
family of *copy facts* —

    ⊤  >  { constants }  ∪  { CopyOf(root) }  >  ⊥

where a root is a (main program, entry key) pair: ``CopyOf(root)``
means "this entry key always holds exactly the value ``root`` held at
program entry, whatever that value was". The main program executes
once, so a root names a single well-defined runtime value even when no
constant is known for it — precisely the facts constant propagation
throws away as ⊥.

**Copy propagation subsumes constant propagation.** Let π project the
copy lattice onto the constant lattice: π(⊤) = ⊤, π(c) = c,
π(CopyOf(r)) = ⊥, π(⊥) = ⊥. π is a meet-homomorphism, and it commutes
with every transfer this client builds from the stage-2 jump functions:
constant edges ignore the environment, identity (pass-through) edges
commute trivially, and polynomial edges are evaluated in the
π-projected environment (a copy fact is not a constant you can fold
arithmetic over). The initial environments satisfy π(copy seed) =
constprop seed (uninitialized main globals seed as ``CopyOf`` instead
of ⊥). Two monotone systems related by a surjective homomorphism have
π(gfp) = gfp of the projected system — so projecting this client's
fixpoint yields the constprop fixpoint *exactly*: every constant
constprop finds appears here identically, and every ⊥ is either ⊥ or
refined into a copy fact. ``tests/framework/test_copyprop_client.py``
asserts both directions, and that the refinement is strict on programs
that pass unknown entry values down call chains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.builder import ForwardFunctions
from repro.core.engine import BindingEdge, entry_keys
from repro.core.exprs import EntryExpr
from repro.core.lattice import BOTTOM, TOP, meet as constant_meet
from repro.frontend.symbols import GlobalId
from repro.framework.client import AnalysisClient, FlowEdge, FlowIndex
from repro.framework.edges import (
    BottomEdge,
    ConstantEdge,
    EdgeFunction,
    IdentityEdge,
)
from repro.framework.lattice import Lattice, Value

_BOTTOM_EDGE = BottomEdge()


@dataclass(frozen=True, slots=True)
class CopyOf:
    """The copy fact: "equal to what ``(proc, key)`` held at entry"."""

    proc: str
    key: object

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"copy-of({self.proc}, {self.key})"


def project(value: Value) -> Value:
    """π: the copy lattice onto the constant lattice (copies become ⊥)."""
    return BOTTOM if value.__class__ is CopyOf else value


class CopyLattice(Lattice):
    """The constant lattice refined with the ``CopyOf`` middle family."""

    top = TOP
    bottom = BOTTOM

    def meet(self, a: Value, b: Value) -> Value:
        if a is TOP:
            return b
        if b is TOP:
            return a
        if a is BOTTOM or b is BOTTOM:
            return BOTTOM
        a_copy = a.__class__ is CopyOf
        if a_copy or b.__class__ is CopyOf:
            # two identical copy facts agree; a copy against anything
            # else (a different root, a constant) is ⊥ — a constant is
            # *a particular* value, a copy fact *whatever the root was*,
            # and nothing proves they coincide.
            if a_copy and b.__class__ is CopyOf and a == b:
                return a
            return BOTTOM
        return constant_meet(a, b)

    def is_bottom(self, value: Value) -> bool:
        return value is BOTTOM


@dataclass(frozen=True, slots=True)
class ProjectedExprEdge(EdgeFunction):
    """A polynomial jump function lifted to the copy lattice: evaluated
    over the π-projected support slice. Arithmetic over a copy fact is
    not a copy fact (and not a constant), so copies degrade to ⊥ before
    the fold — exactly what makes π commute with this transfer."""

    expr: object
    keys: tuple

    def apply(self, env: Mapping) -> Value:
        projected = {
            key: project(env.get(key, BOTTOM)) for key in self.keys
        }
        return self.expr.evaluate(projected)

    def support(self) -> tuple:
        return self.keys

    def memo_token(self) -> object:
        # the interned expression: distinct edges wrapping one expr
        # share memo entries (the slice carries the projected classes,
        # so copy-valued and constant-valued slices never collide).
        return self.expr


def _translate_edge(edge: BindingEdge) -> FlowEdge:
    expr = edge.expr
    if edge.const is not None:
        func: EdgeFunction = ConstantEdge(edge.const)
    elif expr.__class__ is EntryExpr:
        func = IdentityEdge(expr.key)  # copies ride pass-throughs intact
    elif edge.support:
        func = ProjectedExprEdge(expr, edge.support)
    else:
        func = _BOTTOM_EDGE
    return FlowEdge(
        edge.site_id,
        edge.caller,
        edge.callee,
        edge.key,
        func,
        edge.support,
        edge.const,
        expr.key if expr.__class__ is EntryExpr else None,
    )


class CopyPropClient(AnalysisClient):
    """Copy propagation across call bindings, over the stage-2 jump
    functions. Same flow graph, roots, and kill structure as constprop;
    only the lattice, the seeds, and the polynomial transfers differ."""

    name = "copyprop"
    lattice = CopyLattice()

    def __init__(self, forward: ForwardFunctions):
        self.forward = forward

    def entry_keys(self, lowered, graph) -> dict[str, list]:
        return entry_keys(lowered)

    def initial_env(self, lowered, graph) -> dict[str, dict]:
        """⊤ everywhere; the main program's globals seed at their DATA
        constants, and *uninitialized* globals seed as ``CopyOf`` roots
        — the single place this analysis strictly refines constprop's
        seeds (which floor them to ⊥)."""
        val: dict[str, dict] = {
            name: {key: TOP for key in keys}
            for name, keys in entry_keys(lowered).items()
        }
        main = lowered.program.main
        main_env = val[main]
        for gid in list(main_env):
            if not isinstance(gid, GlobalId):
                continue
            data = lowered.program.globals[gid].data_value
            if isinstance(data, bool) or isinstance(data, int):
                main_env[gid] = data
            else:
                main_env[gid] = CopyOf(main, gid)  # unknown but fixed
        return val

    def roots(self, lowered, graph) -> tuple[str, ...]:
        return (lowered.program.main,)

    def flow_edges(self, lowered, graph) -> FlowIndex:
        index = self.forward.support_index(lowered)
        cached = getattr(self.forward, "_copyprop_flow_index", None)
        if cached is not None and cached[0] is index:
            return cached[1]
        mapping: dict[int, FlowEdge] = {}

        def translated(edge: BindingEdge) -> FlowEdge:
            flow = mapping.get(id(edge))
            if flow is None:
                flow = mapping[id(edge)] = _translate_edge(edge)
            return flow

        flow_index = FlowIndex(
            {
                proc: tuple(translated(edge) for edge in edges)
                for proc, edges in index.seeds.items()
            },
            dict(index.kills),
            {
                binding: tuple(translated(edge) for edge in edges)
                for binding, edges in index.dependents.items()
            },
            dict(index.callees),
        )
        try:
            self.forward._copyprop_flow_index = (index, flow_index)
        except AttributeError:
            pass
        return flow_index


def copy_facts(result) -> dict[str, dict]:
    """The entry keys the solve proved to be copies: VAL restricted to
    ``CopyOf`` values — the facts constant propagation cannot express."""
    return {
        proc: {
            key: value
            for key, value in env.items()
            if value.__class__ is CopyOf
        }
        for proc, env in result.val.items()
    }
