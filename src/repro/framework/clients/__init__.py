"""The shipped framework analyses.

- :mod:`repro.framework.clients.constprop` — the paper's jump-function
  constant propagation, re-expressed as a client; byte-identical VALs
  to the specialized :func:`repro.core.solver.solve`.
- :mod:`repro.framework.clients.copyprop` — interprocedural copy
  propagation over a lattice that refines the constant lattice with
  copy-of facts; provably subsumes constprop (projecting copies to ⊥
  recovers the constprop fixpoint exactly).
- :mod:`repro.framework.clients.modref` — MOD/REF side-effect
  summaries re-derived as a reverse-flow powerset dataflow problem,
  cross-checked against :func:`repro.callgraph.modref.compute_modref`.

Imported lazily (not by ``repro.framework``) so the contract layer
stays import-light; CLI and tests import the concrete client they need.
"""

from repro.framework.clients.constprop import ConstPropClient
from repro.framework.clients.copyprop import CopyOf, CopyPropClient
from repro.framework.clients.modref import ModRefClient, cross_check_modref

__all__ = [
    "ConstPropClient",
    "CopyOf",
    "CopyPropClient",
    "ModRefClient",
    "cross_check_modref",
]
