"""Unit tests for the MiniFortran lexer."""

import pytest

from repro.frontend.errors import LexError
from repro.frontend.lexer import tokenize
from repro.frontend.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source)]


class TestBasicTokens:
    def test_empty_input_yields_eof(self):
        assert kinds("") == [TokenKind.EOF]

    def test_identifier(self):
        toks = tokenize("foo")
        assert toks[0].kind == TokenKind.IDENT
        assert toks[0].value == "foo"

    def test_identifiers_are_case_insensitive(self):
        toks = tokenize("FooBar")
        assert toks[0].value == "foobar"

    def test_keywords_are_case_insensitive(self):
        toks = tokenize("PROGRAM Main")
        assert toks[0].kind == TokenKind.KW_PROGRAM
        assert toks[1].value == "main"

    def test_identifier_with_underscore_and_digits(self):
        toks = tokenize("a_1b2")
        assert toks[0].kind == TokenKind.IDENT
        assert toks[0].value == "a_1b2"

    def test_integer_literal(self):
        toks = tokenize("42")
        assert toks[0].kind == TokenKind.INT
        assert toks[0].value == 42

    def test_real_literal(self):
        toks = tokenize("3.25")
        assert toks[0].kind == TokenKind.REAL
        assert toks[0].value == 3.25

    def test_real_with_exponent(self):
        toks = tokenize("1.5e3")
        assert toks[0].kind == TokenKind.REAL
        assert toks[0].value == 1500.0

    def test_real_with_d_exponent(self):
        toks = tokenize("2d2")
        assert toks[0].kind == TokenKind.REAL
        assert toks[0].value == 200.0

    def test_integer_then_exponentless_e_is_identifier(self):
        # '2e' is INT followed by IDENT 'e' (no exponent digits).
        assert kinds("2e")[:2] == [TokenKind.INT, TokenKind.IDENT]

    def test_leading_dot_real(self):
        toks = tokenize(".5")
        assert toks[0].kind == TokenKind.REAL
        assert toks[0].value == 0.5

    def test_string_literal_single_quotes(self):
        toks = tokenize("'hello'")
        assert toks[0].kind == TokenKind.STRING
        assert toks[0].value == "hello"

    def test_string_literal_double_quotes(self):
        toks = tokenize('"hi there"')
        assert toks[0].value == "hi there"


class TestOperators:
    @pytest.mark.parametrize(
        "text,kind",
        [
            ("+", TokenKind.PLUS),
            ("-", TokenKind.MINUS),
            ("*", TokenKind.STAR),
            ("/", TokenKind.SLASH),
            ("**", TokenKind.POWER),
            ("(", TokenKind.LPAREN),
            (")", TokenKind.RPAREN),
            (",", TokenKind.COMMA),
            ("=", TokenKind.ASSIGN),
            ("==", TokenKind.EQ),
            ("/=", TokenKind.NE),
            ("<", TokenKind.LT),
            ("<=", TokenKind.LE),
            (">", TokenKind.GT),
            (">=", TokenKind.GE),
        ],
    )
    def test_operator(self, text, kind):
        assert kinds(text)[0] == kind

    @pytest.mark.parametrize(
        "text,kind",
        [
            (".and.", TokenKind.AND),
            (".or.", TokenKind.OR),
            (".not.", TokenKind.NOT),
            (".true.", TokenKind.KW_TRUE),
            (".false.", TokenKind.KW_FALSE),
            (".eq.", TokenKind.EQ),
            (".ne.", TokenKind.NE),
            (".lt.", TokenKind.LT),
            (".le.", TokenKind.LE),
            (".gt.", TokenKind.GT),
            (".ge.", TokenKind.GE),
        ],
    )
    def test_dot_operator(self, text, kind):
        assert kinds(text)[0] == kind

    def test_dot_operators_case_insensitive(self):
        assert kinds(".AND.")[0] == TokenKind.AND

    def test_int_dot_op_int(self):
        # '1.eq.2' must not lex '1.' as a real literal.
        assert kinds("1.eq.2")[:3] == [TokenKind.INT, TokenKind.EQ, TokenKind.INT]

    def test_power_vs_star(self):
        assert kinds("a ** b")[1] == TokenKind.POWER
        assert kinds("a * b")[1] == TokenKind.STAR


class TestLayout:
    def test_newline_token_emitted(self):
        assert TokenKind.NEWLINE in kinds("a\nb")

    def test_blank_lines_collapse(self):
        toks = kinds("a\n\n\n\nb")
        assert toks.count(TokenKind.NEWLINE) == 2  # after a, after b

    def test_comment_skipped(self):
        toks = tokenize("a ! this is a comment\nb")
        idents = [t.value for t in toks if t.kind == TokenKind.IDENT]
        assert idents == ["a", "b"]

    def test_comment_only_line(self):
        toks = kinds("! just a comment\nx = 1")
        nonlayout = [k for k in toks if k != TokenKind.NEWLINE]
        assert nonlayout[0] == TokenKind.IDENT

    def test_continuation_joins_lines(self):
        toks = tokenize("a = 1 + &\n    2")
        assert TokenKind.NEWLINE not in [t.kind for t in toks[:-3]]

    def test_continuation_with_comment(self):
        toks = tokenize("a = 1 + & ! carried over\n 2")
        ints = [t.value for t in toks if t.kind == TokenKind.INT]
        assert ints == [1, 2]

    def test_continuation_must_end_line(self):
        with pytest.raises(LexError):
            tokenize("a = 1 & 2")

    def test_final_newline_synthesized(self):
        toks = tokenize("a = 1")
        assert toks[-2].kind == TokenKind.NEWLINE
        assert toks[-1].kind == TokenKind.EOF


class TestSpans:
    def test_span_covers_token_text(self):
        source = "alpha = 42"
        toks = tokenize(source)
        assert toks[0].span.extract(source) == "alpha"
        assert toks[2].span.extract(source) == "42"

    def test_line_and_column_tracking(self):
        toks = tokenize("a\n  b")
        b_tok = [t for t in toks if t.value == "b"][0]
        assert b_tok.span.start.line == 2
        assert b_tok.span.start.column == 3

    def test_offsets_monotonic(self):
        toks = tokenize("x = y + z * 2\nw = 1")
        offsets = [t.span.start.offset for t in toks]
        assert offsets == sorted(offsets)


class TestErrors:
    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize("'oops")

    def test_unterminated_string_at_newline(self):
        with pytest.raises(LexError):
            tokenize("'oops\n'")

    def test_bad_dot_sequence(self):
        with pytest.raises(LexError):
            tokenize(".xyz.")

    def test_error_carries_location(self):
        with pytest.raises(LexError) as exc_info:
            tokenize("ok = 1\nbad @")
        assert exc_info.value.location.line == 2
