"""Round-trip tests for the unparser."""

import pytest

from repro.frontend.parser import parse_source
from repro.frontend.symbols import parse_program
from repro.frontend.unparse import unparse, unparse_expr
from repro.workloads import load, suite_names

CORPUS = [
    "program p\nn = 1 + 2 * 3\nend\n",
    "program p\nn = (1 + 2) * 3\nend\n",
    "program p\nn = 2 ** 3 ** 2\nend\n",
    "program p\nn = -2 ** 2\nend\n",
    "program p\nn = 10 - 3 - 2\nend\n",
    "program p\nn = 10 / 5 / 2\nend\n",
    "program p\nlogical q\nq = 1 > 0 .and. .not. (2 > 3) .or. 4 == 4\nend\n",
    "program p\ninteger a(3, 4)\na(1, 2 + 1) = mod(7, 3)\nend\n",
    "program p\nparameter (k = 5)\ninteger v(k)\nv(k) = k\nend\n",
    "program p\ncommon /c/ g, h\ninteger g, h\ndata g /3/\nh = g\nend\n",
    "program p\nif (n > 0) then\nm = 1\nelse\nm = 2\nendif\nend\n",
    "program p\nif (n > 0) goto 10\nn = 1\n10 continue\nend\n",
    "program p\ndo i = 1, 10, 2\nn = n + i\nenddo\nend\n",
    "program p\ndo while (n < 5)\nn = n + 1\nenddo\nend\n",
    "program p\nread n, m\nwrite n + m, 'done'\nstop\nend\n",
    (
        "program p\ninteger w(5)\ncall s(1, n, w)\nend\n"
        "subroutine s(a, b, v)\ninteger a, b, v(5)\nb = f(a)\nv(1) = b\n"
        "return\nend\n"
        "integer function f(x)\ninteger x\nf = x * 2\nend\n"
    ),
    "program p\nreal x\nx = 1.5e2\nx = x / 2.0\nend\n",
]


def normalize(source: str) -> str:
    """Canonical form: unparse of the parsed program."""
    return unparse(parse_source(source))


class TestRoundTrip:
    @pytest.mark.parametrize("source", CORPUS, ids=range(len(CORPUS)))
    def test_unparse_reparses(self, source):
        text = normalize(source)
        parse_program(text)  # must be valid MiniFortran

    @pytest.mark.parametrize("source", CORPUS, ids=range(len(CORPUS)))
    def test_unparse_is_fixpoint(self, source):
        once = normalize(source)
        twice = normalize(once)
        assert once == twice

    @pytest.mark.parametrize("name", suite_names())
    def test_workload_roundtrip(self, name):
        source = load(name, scale=0.3).source
        once = normalize(source)
        assert normalize(once) == once

    def test_roundtrip_preserves_analysis_results(self):
        from repro import analyze

        source = load("mdg", scale=0.5).source
        original = analyze(source)
        roundtripped = analyze(normalize(source))
        assert original.constants_found == roundtripped.constants_found
        for proc in original.lowered.procedures:
            assert original.constants(proc) == roundtripped.constants(proc)


class TestExpressionPrinting:
    def expr_of(self, text):
        unit = parse_source(f"program p\nzz = {text}\nend\n")
        return unit.procedures[0].body[0].value

    @pytest.mark.parametrize(
        "text",
        [
            "1 + 2 * 3",
            "(1 + 2) * 3",
            "a - (b - c)",
            "a - b - c",
            "a / (b * c)",
            "2 ** (3 ** 2)",
            "(2 ** 3) ** 2",
            "-(a + b)",
            ".not. (a > b)",
            "max(a, min(b, c))",
        ],
    )
    def test_precedence_preserved(self, text):
        expr = self.expr_of(text)
        printed = unparse_expr(expr)
        reparsed = self.expr_of(printed)
        assert unparse_expr(reparsed) == printed

    def test_negative_literal_parenthesized_when_needed(self):
        # 2 ** (-1) must not print as 2 ** -1 (which would not parse)
        expr = self.expr_of("2 ** (0 - 1)")
        printed = unparse_expr(expr)
        self.expr_of(printed)
