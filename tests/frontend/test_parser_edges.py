"""Parser edge cases discovered worth pinning during development."""

import pytest

from repro.frontend import astnodes as ast
from repro.frontend.errors import ParseError
from repro.frontend.parser import parse_source
from repro.frontend.symbols import parse_program
from repro.interp import run_program


class TestLabels:
    def test_label_on_assignment(self):
        unit = parse_source("program p\n10 n = 1\ngoto 10\nend\n")
        assert unit.procedures[0].body[0].label == 10

    def test_label_on_if(self):
        unit = parse_source(
            "program p\n20 if (n > 0) then\nn = 0\nendif\nend\n"
        )
        assert unit.procedures[0].body[0].label == 20

    def test_label_on_do(self):
        unit = parse_source("program p\n30 do i = 1, 2\nn = i\nenddo\nend\n")
        assert unit.procedures[0].body[0].label == 30

    def test_goto_into_loop_body_runs(self):
        # unusual but legal in our CFG model: jump over the loop setup
        source = """
program p
  n = 0
  goto 10
  do i = 1, 3
10  n = n + 1
  enddo
  write n
end
"""
        # jumping into a DO body skips the trip-count setup; the loop
        # machinery reads undefined state, which the parser cannot reject
        # and the interpreter reports at run time.
        parse_program(source)

    def test_label_zero_and_large(self):
        unit = parse_source(
            "program p\n0 continue\n99999 continue\ngoto 99999\nend\n"
        )
        labels = [s.label for s in unit.procedures[0].body]
        assert labels[:2] == [0, 99999]


class TestStatementBoundaries:
    def test_two_statements_one_line_rejected(self):
        with pytest.raises(ParseError):
            parse_source("program p\nn = 1 m = 2\nend\n")

    def test_continuation_inside_call(self):
        source = "program p\ninteger w(3)\ncall s(1, &\n  2, w)\nend\n" + (
            "subroutine s(a, b, v)\ninteger a, b, v(3)\nv(1) = a + b\nend\n"
        )
        program = parse_program(source)
        call = program.procedure("p").ast.body[0]
        assert len(call.args) == 3

    def test_empty_then_branch(self):
        unit = parse_source("program p\nif (n > 0) then\nendif\nend\n")
        assert unit.procedures[0].body[0].then_body == []

    def test_empty_loop_body(self):
        unit = parse_source("program p\ndo i = 1, 3\nenddo\nend\n")
        assert unit.procedures[0].body[0].body == []

    def test_deeply_nested_structures(self):
        lines = ["program p"]
        depth = 12
        for i in range(depth):
            lines.append(f"if (n > {i}) then")
        lines.append("m = 1")
        lines.extend(["endif"] * depth)
        lines.append("end")
        unit = parse_source("\n".join(lines) + "\n")
        node = unit.procedures[0].body[0]
        for _ in range(depth - 1):
            assert isinstance(node, ast.IfStmt)
            node = node.then_body[0]


class TestNegativeLiterals:
    def test_negative_do_step_executes(self):
        source = (
            "program p\nm = 0\ndo i = 3, 1, -1\nm = m * 10 + i\nenddo\n"
            "write m\nend\n"
        )
        assert run_program(source).outputs == [321]

    def test_double_negation_parses(self):
        unit = parse_source("program p\nn = - - 5\nend\n")
        value = unit.procedures[0].body[0].value
        assert isinstance(value, ast.UnaryOp)
        assert isinstance(value.operand, ast.UnaryOp)

    def test_subtraction_vs_negative_literal(self):
        source = "program p\nn = 5\nm = n -1\nwrite m\nend\n"
        assert run_program(source).outputs == [4]
