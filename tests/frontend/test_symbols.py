"""Unit tests for name resolution and semantic checks."""

import pytest

from repro.frontend import astnodes as ast
from repro.frontend.errors import SemanticError
from repro.frontend.symbols import GlobalId, SymbolKind, parse_program


MINI = """
program main
  integer n
  n = 1
  call s(n)
end

subroutine s(k)
  integer k
  k = k + 1
end
"""


class TestProgramStructure:
    def test_procedures_registered(self):
        prog = parse_program(MINI)
        assert set(prog.procedures) == {"main", "s"}
        assert prog.main == "main"
        assert prog.main_procedure.name == "main"

    def test_missing_program_unit(self):
        with pytest.raises(SemanticError, match="no PROGRAM"):
            parse_program("subroutine s\nx = 1\nend\n")

    def test_duplicate_program_unit(self):
        source = "program a\nx = 1\nend\nprogram b\nx = 1\nend\n"
        with pytest.raises(SemanticError, match="multiple PROGRAM"):
            parse_program(source)

    def test_duplicate_procedure_name(self):
        source = MINI + "\nsubroutine s(j)\nj = 1\nend\n"
        with pytest.raises(SemanticError, match="duplicate procedure"):
            parse_program(source)

    def test_procedure_lookup_unknown(self):
        prog = parse_program(MINI)
        with pytest.raises(SemanticError):
            prog.procedure("nope")

    def test_procedure_shadowing_intrinsic_rejected(self):
        source = "program p\nx = 1\nend\nsubroutine mod(a, b)\na = b\nend\n"
        with pytest.raises(SemanticError, match="intrinsic"):
            parse_program(source)


class TestSymbolKinds:
    def test_formals(self):
        prog = parse_program(MINI)
        sub = prog.procedure("s")
        formal = sub.symtab.lookup("k")
        assert formal.kind is SymbolKind.FORMAL
        assert formal.type is ast.Type.INTEGER
        assert [f.name for f in sub.formals] == ["k"]

    def test_declared_local(self):
        prog = parse_program(MINI)
        main = prog.procedure("main")
        assert main.symtab.lookup("n").kind is SymbolKind.LOCAL

    def test_implicit_integer(self):
        prog = parse_program("program p\nidx = 1\nend\n")
        symbol = prog.procedure("p").symtab.lookup("idx")
        assert symbol.kind is SymbolKind.LOCAL
        assert symbol.type is ast.Type.INTEGER

    def test_implicit_real(self):
        prog = parse_program("program p\nx = 1.0\nend\n")
        assert prog.procedure("p").symtab.lookup("x").type is ast.Type.REAL

    def test_function_result_symbol(self):
        source = MINI + "\ninteger function f(x)\n  integer x\n  f = x\nend\n"
        prog = parse_program(source)
        func = prog.procedure("f")
        result = func.result_symbol
        assert result is not None
        assert result.kind is SymbolKind.RESULT
        assert result.type is ast.Type.INTEGER

    def test_named_constant(self):
        prog = parse_program("program p\nparameter (k = 3 * 4)\nn = k\nend\n")
        symbol = prog.procedure("p").symtab.lookup("k")
        assert symbol.kind is SymbolKind.NAMED_CONST
        assert symbol.const_value == 12

    def test_named_constant_chains(self):
        prog = parse_program(
            "program p\nparameter (a = 2, b = a * a, c = b + 1)\nn = c\nend\n"
        )
        assert prog.procedure("p").symtab.lookup("c").const_value == 5

    def test_assignment_to_named_constant_rejected(self):
        with pytest.raises(SemanticError, match="named constant"):
            parse_program("program p\nparameter (k = 1)\nk = 2\nend\n")


class TestCommonBlocks:
    COMMON = """
program main
  common /cfg/ nmax, scale
  integer nmax
  real scale
  nmax = 5
  call s
end

subroutine s
  common /cfg/ limit, factor
  integer limit
  real factor
  n = limit
end
"""

    def test_storage_association_by_position(self):
        prog = parse_program(self.COMMON)
        main_sym = prog.procedure("main").symtab.lookup("nmax")
        sub_sym = prog.procedure("s").symtab.lookup("limit")
        assert main_sym.global_id == sub_sym.global_id == GlobalId("cfg", 0)

    def test_global_registry(self):
        prog = parse_program(self.COMMON)
        assert GlobalId("cfg", 0) in prog.globals
        assert GlobalId("cfg", 1) in prog.globals
        assert prog.globals[GlobalId("cfg", 0)].type is ast.Type.INTEGER

    def test_global_display_name(self):
        prog = parse_program(self.COMMON)
        assert prog.global_display(GlobalId("cfg", 0)) == "cfg.nmax"

    def test_conflicting_types_rejected(self):
        source = """
program main
  common /c/ a
  integer a
  a = 1
end
subroutine s
  common /c/ b
  real b
  b = 1.0
end
"""
        with pytest.raises(SemanticError, match="conflicting type"):
            parse_program(source)

    def test_formal_in_common_rejected(self):
        source = "program m\nx=1\nend\nsubroutine s(a)\ncommon /c/ a\na=1\nend\n"
        with pytest.raises(SemanticError, match="COMMON"):
            parse_program(source)

    def test_name_in_two_commons_rejected(self):
        source = "program m\ncommon /a/ x\ncommon /b/ x\nx = 1\nend\n"
        with pytest.raises(SemanticError, match="two COMMON"):
            parse_program(source)

    def test_globals_used(self):
        prog = parse_program(self.COMMON)
        names = {s.name for s in prog.procedure("s").globals_used()}
        assert names == {"limit", "factor"}


class TestDataStatements:
    def test_data_on_common_member(self):
        source = """
program main
  common /c/ n
  integer n
  data n /42/
  m = n
end
"""
        prog = parse_program(source)
        assert prog.globals[GlobalId("c", 0)].data_value == 42

    def test_conflicting_data_values_rejected(self):
        source = """
program main
  common /c/ n
  integer n
  data n /1/
  m = n
end
subroutine s
  common /c/ k
  integer k
  data k /2/
  m = k
end
"""
        with pytest.raises(SemanticError, match="conflicting DATA"):
            parse_program(source)

    def test_data_local_becomes_saved_global(self):
        source = "program p\ninteger n\ndata n /7/\nm = n\nend\n"
        prog = parse_program(source)
        symbol = prog.procedure("p").symtab.lookup("n")
        assert symbol.kind is SymbolKind.GLOBAL
        assert symbol.global_id.block == "save$p"
        assert symbol.data_value == 7

    def test_data_on_formal_rejected(self):
        source = "program m\nx=1\nend\nsubroutine s(a)\ninteger a\ndata a /1/\nend\n"
        with pytest.raises(SemanticError, match="DATA"):
            parse_program(source)


class TestDisambiguation:
    def test_array_vs_call(self):
        source = """
program p
  integer v(10)
  v(1) = f(2)
end
integer function f(x)
  integer x
  f = x
end
"""
        prog = parse_program(source)
        stmt = prog.procedure("p").ast.body[0]
        assert isinstance(stmt.target, ast.ArrayRef)
        assert isinstance(stmt.value, ast.FunctionCall)

    def test_intrinsic_call(self):
        prog = parse_program("program p\nn = mod(7, 3)\nend\n")
        stmt = prog.procedure("p").ast.body[0]
        assert isinstance(stmt.value, ast.FunctionCall)
        assert stmt.value.name == "mod"

    def test_unknown_call_like_rejected(self):
        with pytest.raises(SemanticError, match="neither an array"):
            parse_program("program p\nn = mystery(1)\nend\n")

    def test_subroutine_used_as_function_rejected(self):
        source = "program p\nn = s(1)\nend\nsubroutine s(a)\na = 1\nend\n"
        with pytest.raises(SemanticError, match="not a function"):
            parse_program(source)

    def test_function_called_as_subroutine_rejected(self):
        source = "program p\ncall f(1)\nend\ninteger function f(x)\nf = x\nend\n"
        with pytest.raises(SemanticError, match="not a subroutine"):
            parse_program(source)

    def test_call_to_unknown_subroutine(self):
        with pytest.raises(SemanticError, match="unknown subroutine"):
            parse_program("program p\ncall nope(1)\nend\n")

    def test_intrinsic_arity_checked(self):
        with pytest.raises(SemanticError, match="arguments"):
            parse_program("program p\nn = mod(1)\nend\n")

    def test_array_subscript_count_checked(self):
        with pytest.raises(SemanticError, match="subscripts"):
            parse_program("program p\ninteger a(2, 2)\na(1) = 0\nend\n")

    def test_scalar_with_subscripts_rejected(self):
        with pytest.raises(SemanticError, match="not an array"):
            parse_program("program p\ninteger a\na(1) = 0\nend\n")

    def test_array_without_subscripts_rejected(self):
        with pytest.raises(SemanticError, match="without subscripts"):
            parse_program("program p\ninteger a(5)\nn = a\nend\n")

    def test_procedure_name_as_variable_rejected(self):
        source = "program p\nn = s\nend\nsubroutine s\nx=1\nend\n"
        with pytest.raises(SemanticError, match="used as a variable"):
            parse_program(source)


class TestArities:
    def test_call_arity_mismatch(self):
        source = "program p\ncall s(1)\nend\nsubroutine s(a, b)\na = b\nend\n"
        with pytest.raises(SemanticError, match="expects 2 arguments"):
            parse_program(source)

    def test_function_arity_mismatch(self):
        source = (
            "program p\nn = f(1, 2)\nend\n"
            "integer function f(x)\nf = x\nend\n"
        )
        with pytest.raises(SemanticError, match="expects 1 arguments"):
            parse_program(source)

    def test_nested_call_arity_checked(self):
        source = (
            "program p\ncall s(f(1, 2))\nend\n"
            "subroutine s(a)\na = 1\nend\n"
            "integer function f(x)\nf = x\nend\n"
        )
        with pytest.raises(SemanticError, match="expects 1 arguments"):
            parse_program(source)


class TestDeclarationErrors:
    def test_duplicate_type_decl(self):
        with pytest.raises(SemanticError, match="duplicate type"):
            parse_program("program p\ninteger n\ninteger n\nn = 1\nend\n")

    def test_nonconstant_array_bound(self):
        with pytest.raises(SemanticError, match="not a named constant"):
            parse_program("program p\ninteger a(n)\na(1) = 0\nend\n")

    def test_nonpositive_array_bound(self):
        with pytest.raises(SemanticError, match="positive"):
            parse_program("program p\ninteger a(0)\nend\n")

    def test_parameter_bound_allowed(self):
        prog = parse_program(
            "program p\nparameter (n = 8)\ninteger a(n)\na(1) = 0\nend\n"
        )
        assert prog.procedure("p").symtab.lookup("a").dims == (8,)

    def test_do_over_array_rejected(self):
        with pytest.raises(SemanticError, match="induction"):
            parse_program("program p\ninteger a(3)\ndo a = 1, 3\nenddo\nend\n")


class TestCharacteristics:
    def test_noncomment_lines(self):
        source = "program p\n! comment\n\nx = 1\nend\n"
        prog = parse_program(source)
        assert prog.noncomment_lines() == 3

    def test_characteristics_keys(self):
        prog = parse_program(MINI)
        chars = prog.characteristics()
        assert chars["procedures"] == 2
        assert chars["lines"] > 0
        assert chars["mean_lines_per_proc"] > 0
        assert chars["median_lines_per_proc"] > 0
