"""Error-path coverage: messages and locations must stay useful."""

import pytest

from repro.frontend.errors import (
    FrontendError,
    LexError,
    ParseError,
    SemanticError,
)
from repro.frontend.lexer import tokenize
from repro.frontend.parser import parse_source
from repro.frontend.source import SourceLocation
from repro.frontend.symbols import parse_program


class TestHierarchy:
    def test_all_derive_from_frontend_error(self):
        for kind in (LexError, ParseError, SemanticError):
            assert issubclass(kind, FrontendError)

    def test_catchable_as_one(self):
        with pytest.raises(FrontendError):
            tokenize("@")
        with pytest.raises(FrontendError):
            parse_source("program p\n= 1\nend\n")
        with pytest.raises(FrontendError):
            parse_program("program p\nn = zz(1)\nend\n")


class TestMessages:
    def test_location_in_message(self):
        with pytest.raises(LexError) as exc_info:
            tokenize("ok = 1\n   bad @ here")
        assert "2:8" in str(exc_info.value)

    def test_no_location_is_fine(self):
        error = SemanticError("free-floating")
        assert str(error) == "free-floating"

    def test_parse_error_names_found_token(self):
        with pytest.raises(ParseError, match="found"):
            parse_source("program p\nn = call\nend\n")

    def test_semantic_error_names_symbol(self):
        with pytest.raises(SemanticError, match="'nope'"):
            parse_program("program p\ncall nope\nend\n")


class TestLocations:
    def test_location_ordering(self):
        a = SourceLocation(1, 5, 4)
        b = SourceLocation(2, 1, 10)
        assert a < b

    def test_location_str(self):
        assert str(SourceLocation(3, 7, 20)) == "3:7"

    @pytest.mark.parametrize(
        "source,line",
        [
            ("program p\nn = @\nend\n", 2),
            ("program p\nn = 1\nm = @\nend\n", 3),
        ],
    )
    def test_lex_error_line_number(self, source, line):
        with pytest.raises(LexError) as exc_info:
            tokenize(source)
        assert exc_info.value.location.line == line

    def test_parse_error_column(self):
        with pytest.raises(ParseError) as exc_info:
            parse_source("program p\nif (1 > 0 then\nendif\nend\n")
        assert exc_info.value.location is not None
        assert exc_info.value.location.line == 2


class TestRecoveryBoundaries:
    """Errors must be raised eagerly, not produce corrupt ASTs."""

    def test_error_in_second_unit_reported(self):
        source = "program p\nn = 1\nend\nsubroutine s\nx = (1\nend\n"
        with pytest.raises(ParseError):
            parse_source(source)

    def test_error_inside_nested_body(self):
        source = (
            "program p\ndo i = 1, 3\nif (i > 1) then\nm = *\nendif\nenddo\nend\n"
        )
        with pytest.raises(ParseError):
            parse_source(source)

    def test_deep_expression_error(self):
        source = "program p\nn = ((((1 + ))))\nend\n"
        with pytest.raises(ParseError):
            parse_source(source)
