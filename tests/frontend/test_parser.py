"""Unit tests for the MiniFortran parser (syntax only; no resolution)."""

import pytest

from repro.frontend import astnodes as ast
from repro.frontend.errors import ParseError
from repro.frontend.parser import parse_source


def parse_main_body(body_lines):
    """Wrap statements in a PROGRAM and return the parsed body."""
    source = "program t\n" + "\n".join(body_lines) + "\nend\n"
    unit = parse_source(source)
    return unit.procedures[0].body


def parse_single(stmt_line):
    body = parse_main_body([stmt_line])
    assert len(body) == 1
    return body[0]


class TestProgramUnits:
    def test_program_unit(self):
        unit = parse_source("program main\nx = 1\nend\n")
        assert len(unit.procedures) == 1
        proc = unit.procedures[0]
        assert proc.kind is ast.ProcedureKind.PROGRAM
        assert proc.name == "main"

    def test_subroutine_with_params(self):
        unit = parse_source("subroutine s(a, b)\na = b\nend\n")
        proc = unit.procedures[0]
        assert proc.kind is ast.ProcedureKind.SUBROUTINE
        assert proc.params == ["a", "b"]

    def test_subroutine_without_params(self):
        unit = parse_source("subroutine s\nx = 1\nend\n")
        assert unit.procedures[0].params == []

    def test_subroutine_empty_parens(self):
        unit = parse_source("subroutine s()\nx = 1\nend\n")
        assert unit.procedures[0].params == []

    def test_function_unit(self):
        unit = parse_source("integer function f(x)\nf = x\nend\n")
        proc = unit.procedures[0]
        assert proc.kind is ast.ProcedureKind.FUNCTION
        assert proc.return_type is ast.Type.INTEGER
        assert proc.params == ["x"]

    def test_real_function(self):
        unit = parse_source("real function g(x)\ng = x\nend\n")
        assert unit.procedures[0].return_type is ast.Type.REAL

    def test_multiple_units(self):
        unit = parse_source(
            "program p\ncall s\nend\n\nsubroutine s\nx = 1\nend\n"
        )
        assert [p.name for p in unit.procedures] == ["p", "s"]

    def test_empty_source_rejected(self):
        with pytest.raises(ParseError):
            parse_source("\n\n")

    def test_function_requires_paren_list(self):
        with pytest.raises(ParseError):
            parse_source("integer function f\nf = 1\nend\n")

    def test_unit_span_covers_end(self):
        source = "program p\nx = 1\nend\n"
        unit = parse_source(source)
        assert unit.procedures[0].span.extract(source).startswith("program")


class TestDeclarations:
    def test_integer_decl(self):
        unit = parse_source("program p\ninteger i, j\ni = j\nend\n")
        decl = unit.procedures[0].decls[0]
        assert isinstance(decl, ast.TypeDecl)
        assert decl.type is ast.Type.INTEGER
        assert [d.name for d in decl.declarators] == ["i", "j"]

    def test_array_decl(self):
        unit = parse_source("program p\ninteger a(10, 20)\na(1,1) = 0\nend\n")
        declarator = unit.procedures[0].decls[0].declarators[0]
        assert declarator.is_array
        assert len(declarator.dims) == 2

    def test_dimension_decl(self):
        unit = parse_source("program p\ndimension v(5)\nv(1) = 0\nend\n")
        assert isinstance(unit.procedures[0].decls[0], ast.DimensionDecl)

    def test_dimension_requires_bounds(self):
        with pytest.raises(ParseError):
            parse_source("program p\ndimension v\nend\n")

    def test_common_decl(self):
        unit = parse_source("program p\ncommon /blk/ a, b\na = b\nend\n")
        decl = unit.procedures[0].decls[0]
        assert isinstance(decl, ast.CommonDecl)
        assert decl.block == "blk"
        assert [d.name for d in decl.declarators] == ["a", "b"]

    def test_data_decl(self):
        unit = parse_source("program p\ninteger n\ndata n /17/\nx = n\nend\n")
        decl = unit.procedures[0].decls[1]
        assert isinstance(decl, ast.DataDecl)
        name, lit = decl.pairs[0]
        assert name == "n"
        assert lit.value == 17

    def test_data_decl_negative(self):
        unit = parse_source("program p\ninteger n\ndata n /-3/\nx = n\nend\n")
        assert unit.procedures[0].decls[1].pairs[0][1].value == -3

    def test_parameter_decl(self):
        unit = parse_source("program p\nparameter (k = 4, m = k + 1)\nx = m\nend\n")
        decl = unit.procedures[0].decls[0]
        assert isinstance(decl, ast.ParameterDecl)
        assert [name for name, _ in decl.pairs] == ["k", "m"]

    def test_decls_must_precede_statements(self):
        with pytest.raises(ParseError):
            parse_source("program p\nx = 1\ninteger i\nend\n")


class TestStatements:
    def test_assignment(self):
        stmt = parse_single("x = 1 + 2")
        assert isinstance(stmt, ast.Assign)
        assert isinstance(stmt.target, ast.VarRef)
        assert stmt.target.name == "x"

    def test_array_assignment(self):
        stmt = parse_single("a(i) = 0")
        assert isinstance(stmt.target, ast.ArrayRef)
        assert stmt.target.name == "a"

    def test_labelled_statement(self):
        stmt = parse_single("10 continue")
        assert isinstance(stmt, ast.Continue)
        assert stmt.label == 10

    def test_goto(self):
        stmt = parse_single("goto 10")
        assert isinstance(stmt, ast.Goto)
        assert stmt.target == 10

    def test_return(self):
        assert isinstance(parse_single("return"), ast.ReturnStmt)

    def test_stop(self):
        assert isinstance(parse_single("stop"), ast.StopStmt)

    def test_call_no_args(self):
        stmt = parse_single("call init")
        assert isinstance(stmt, ast.CallStmt)
        assert stmt.name == "init"
        assert stmt.args == []

    def test_call_with_args(self):
        stmt = parse_single("call f(1, x, y + 1)")
        assert len(stmt.args) == 3

    def test_read(self):
        stmt = parse_single("read n, m")
        assert isinstance(stmt, ast.ReadStmt)
        assert [t.name for t in stmt.targets] == ["n", "m"]

    def test_read_array_element(self):
        stmt = parse_single("read a(1)")
        assert isinstance(stmt.targets[0], ast.ArrayRef)

    def test_read_rejects_expression(self):
        with pytest.raises(ParseError):
            parse_single("read 42")

    def test_write(self):
        stmt = parse_single("write x, y + 1, 'msg'")
        assert isinstance(stmt, ast.WriteStmt)
        assert len(stmt.values) == 3

    def test_block_if(self):
        body = parse_main_body(
            ["if (x > 0) then", "y = 1", "else", "y = 2", "endif"]
        )
        stmt = body[0]
        assert isinstance(stmt, ast.IfStmt)
        assert len(stmt.then_body) == 1
        assert len(stmt.else_body) == 1

    def test_block_if_no_else(self):
        body = parse_main_body(["if (x > 0) then", "y = 1", "endif"])
        assert body[0].else_body == []

    def test_elseif_desugars_to_nested_if(self):
        body = parse_main_body(
            [
                "if (x == 1) then",
                "y = 1",
                "elseif (x == 2) then",
                "y = 2",
                "else",
                "y = 3",
                "endif",
            ]
        )
        outer = body[0]
        assert len(outer.else_body) == 1
        inner = outer.else_body[0]
        assert isinstance(inner, ast.IfStmt)
        assert len(inner.then_body) == 1
        assert len(inner.else_body) == 1

    def test_logical_if(self):
        stmt = parse_single("if (x > 0) goto 20")
        assert isinstance(stmt, ast.IfStmt)
        assert isinstance(stmt.then_body[0], ast.Goto)
        assert stmt.else_body == []

    def test_do_loop(self):
        body = parse_main_body(["do i = 1, 10", "s = s + i", "enddo"])
        loop = body[0]
        assert isinstance(loop, ast.DoLoop)
        assert loop.var.name == "i"
        assert loop.step is None
        assert len(loop.body) == 1

    def test_do_loop_with_step(self):
        body = parse_main_body(["do i = 10, 1, -1", "s = s + i", "enddo"])
        assert body[0].step is not None

    def test_do_while(self):
        body = parse_main_body(["do while (x < 10)", "x = x + 1", "enddo"])
        loop = body[0]
        assert isinstance(loop, ast.DoWhile)

    def test_nested_loops(self):
        body = parse_main_body(
            ["do i = 1, 3", "do j = 1, 3", "x = i * j", "enddo", "enddo"]
        )
        outer = body[0]
        inner = outer.body[0]
        assert isinstance(inner, ast.DoLoop)
        assert inner.var.name == "j"

    def test_unclosed_if_rejected(self):
        with pytest.raises(ParseError):
            parse_main_body(["if (x > 0) then", "y = 1"])

    def test_unclosed_do_rejected(self):
        with pytest.raises(ParseError):
            parse_main_body(["do i = 1, 3", "x = i"])


class TestExpressions:
    def expr_of(self, text):
        return parse_single(f"x = {text}").value

    def test_precedence_mul_over_add(self):
        expr = self.expr_of("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_parens(self):
        expr = self.expr_of("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_left_associative_subtraction(self):
        expr = self.expr_of("10 - 3 - 2")
        assert expr.op == "-"
        assert expr.left.op == "-"
        assert expr.right.value == 2

    def test_power_right_associative(self):
        expr = self.expr_of("2 ** 3 ** 2")
        assert expr.op == "**"
        assert expr.right.op == "**"

    def test_power_binds_tighter_than_unary_minus(self):
        expr = self.expr_of("-2 ** 2")
        assert isinstance(expr, ast.UnaryOp)
        assert expr.operand.op == "**"

    def test_unary_minus(self):
        expr = self.expr_of("-x")
        assert isinstance(expr, ast.UnaryOp)
        assert expr.op == "-"

    def test_unary_plus_dropped(self):
        expr = self.expr_of("+x")
        assert isinstance(expr, ast.VarRef)

    def test_comparison(self):
        expr = self.expr_of("a .le. b")
        assert expr.op == "<="

    def test_modern_comparison_spelling(self):
        expr = self.expr_of("a /= b")
        assert expr.op == "/="

    def test_logical_precedence(self):
        expr = self.expr_of("a > 1 .and. b > 2 .or. c > 3")
        assert expr.op == ".or."
        assert expr.left.op == ".and."

    def test_not(self):
        expr = self.expr_of(".not. flag")
        assert isinstance(expr, ast.UnaryOp)
        assert expr.op == ".not."

    def test_call_like(self):
        expr = self.expr_of("f(1, 2)")
        assert isinstance(expr, ast.FunctionCall)
        assert expr.name == "f"
        assert len(expr.args) == 2

    def test_nested_calls(self):
        expr = self.expr_of("f(g(x), 1)")
        assert isinstance(expr.args[0], ast.FunctionCall)

    def test_logical_literals(self):
        assert self.expr_of(".true.").value is True
        assert self.expr_of(".false.").value is False

    def test_comparison_is_not_chainable(self):
        with pytest.raises(ParseError):
            self.expr_of("a < b < c")

    def test_missing_operand(self):
        with pytest.raises(ParseError):
            self.expr_of("1 +")

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            self.expr_of("(1 + 2")


class TestSpans:
    def test_var_ref_span_is_exact(self):
        source = "program p\nresult = alpha + 1\nend\n"
        unit = parse_source(source)
        stmt = unit.procedures[0].body[0]
        assert stmt.target.span.extract(source) == "result"
        assert stmt.value.left.span.extract(source) == "alpha"

    def test_array_index_var_span(self):
        source = "program p\nv(idx) = 0\nend\n"
        unit = parse_source(source)
        stmt = unit.procedures[0].body[0]
        assert stmt.target.indices[0].span.extract(source) == "idx"
