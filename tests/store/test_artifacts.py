"""Unit tests for the content-addressed artifact store itself."""

import json
import os

import pytest

from repro.store.artifacts import (
    ArtifactStore,
    MemoryStore,
    StoreError,
    StoreIndexError,
)
from repro.store.fingerprints import SCHEMA


@pytest.fixture(params=["disk", "memory"])
def store(request, tmp_path):
    if request.param == "disk":
        return ArtifactStore(str(tmp_path / "store"))
    return MemoryStore()


class TestObjects:
    def test_roundtrip(self, store):
        payload = {"b": [1, 2], "a": "x"}
        sha = store.put_object(payload)
        assert store.get_object(sha) == payload

    def test_content_addressing_dedups(self, store):
        assert store.put_object({"k": 1}) == store.put_object({"k": 1})
        assert store.put_object({"k": 1}) != store.put_object({"k": 2})

    def test_missing_object_is_store_error(self, store):
        with pytest.raises(StoreError):
            store.get_object("0" * 64)

    def test_tampered_object_fails_verification(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        sha = store.put_object({"value": 41})
        target = os.path.join(store.path, "objects", f"{sha}.json")
        with open(target, "w") as handle:
            handle.write('{"value":42}')
        with pytest.raises(StoreError, match="content verification"):
            store.get_object(sha)

    def test_truncated_object_fails_verification(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        sha = store.put_object({"value": list(range(50))})
        target = os.path.join(store.path, "objects", f"{sha}.json")
        text = open(target).read()
        with open(target, "w") as handle:
            handle.write(text[: len(text) // 2])
        with pytest.raises(StoreError):
            store.get_object(sha)


class TestSnapshotIndex:
    def test_missing_index_means_no_snapshot(self, store):
        assert store.load_snapshot("cfg", "prog") is None

    def test_roundtrip_last_wins(self, store):
        store.append_snapshot("cfg", "prog", {"rev": 1})
        store.append_snapshot("cfg", "other", {"rev": 9})
        store.append_snapshot("cfg", "prog", {"rev": 2})
        assert store.load_snapshot("cfg", "prog") == {"rev": 2}
        assert store.load_snapshot("cfg", "other") == {"rev": 9}
        assert store.load_snapshot("cfg2", "prog") is None

    def test_torn_final_line_is_skipped(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        store.append_snapshot("cfg", "prog", {"rev": 1})
        store.append_snapshot("cfg", "prog", {"rev": 2})
        with open(store._index_path) as handle:
            lines = handle.readlines()
        with open(store._index_path, "w") as handle:
            handle.writelines(lines[:-1])
            handle.write(lines[-1][: len(lines[-1]) // 2])  # torn write
        assert store.load_snapshot("cfg", "prog") == {"rev": 1}

    def test_foreign_header_resets_index(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        store.append_snapshot("cfg", "prog", {"rev": 1})
        with open(store._index_path) as handle:
            lines = handle.readlines()
        lines[0] = json.dumps({"kind": "header", "schema": SCHEMA + 1}) + "\n"
        with open(store._index_path, "w") as handle:
            handle.writelines(lines)
        with pytest.raises(StoreIndexError):
            store.load_snapshot("cfg", "prog")
        # the reset left a clean, usable index behind
        assert store.load_snapshot("cfg", "prog") is None
        store.append_snapshot("cfg", "prog", {"rev": 3})
        assert store.load_snapshot("cfg", "prog") == {"rev": 3}

    def test_garbage_index_resets(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        os.makedirs(store.path, exist_ok=True)
        with open(store._index_path, "w") as handle:
            handle.write("not json at all\n")
        with pytest.raises(StoreIndexError):
            store.load_snapshot("cfg", "prog")
        assert store.load_snapshot("cfg", "prog") is None

    def test_malformed_body_lines_skipped(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        store.append_snapshot("cfg", "prog", {"rev": 1})
        with open(store._index_path, "a") as handle:
            handle.write("}{ torn\n")
            handle.write(json.dumps({"kind": "noise"}) + "\n")
        assert store.load_snapshot("cfg", "prog") == {"rev": 1}


def _hammer_index(path: str, writer: int, appends: int) -> None:
    store = ArtifactStore(path)
    for revision in range(appends):
        store.append_snapshot("cfg", f"writer{writer}", {"rev": revision})


class TestIndexLocking:
    """The two-writer regression for the advisory index lock.

    Without the flock around check-header-then-append, one writer's
    "missing header" probe races another's first append: the header
    rewrite (mode ``"w"``) truncates lines the other just fsync'd, and
    whole snapshot histories silently vanish. Two daemon requests
    publishing concurrently — or a service process next to a sweep
    worker — hit exactly this path.
    """

    def test_two_processes_never_lose_or_tear_lines(self, tmp_path):
        import multiprocessing

        path = str(tmp_path / "store")
        writers, appends = 4, 25
        context = multiprocessing.get_context("spawn")
        processes = [
            context.Process(target=_hammer_index, args=(path, w, appends))
            for w in range(writers)
        ]
        for proc in processes:
            proc.start()
        for proc in processes:
            proc.join(timeout=120)
            assert proc.exitcode == 0

        store = ArtifactStore(path)
        with open(store._index_path) as handle:
            lines = handle.read().splitlines()
        events = [json.loads(line) for line in lines]  # nothing torn
        assert events[0] == {"kind": "header", "schema": SCHEMA}
        # exactly one header — and it is line 0, not a mid-file rewrite
        assert sum(1 for e in events if e.get("kind") == "header") == 1
        # every fsync'd append survived: no writer truncated another
        assert len(events) == 1 + writers * appends
        for writer in range(writers):
            assert store.load_snapshot("cfg", f"writer{writer}") == {
                "rev": appends - 1
            }


class TestGc:
    """``gc(max_bytes)`` evicts least-recently-verified objects and
    compacts away the snapshot lines that reference them — a snapshot
    pointing at an evicted sha would otherwise turn every future load
    into a verification failure."""

    @staticmethod
    def _age(store, sha, suffix, seconds_ago):
        path = os.path.join(store.path, "objects", f"{sha}.{suffix}")
        stamp = os.stat(path).st_mtime - seconds_ago
        os.utime(path, (stamp, stamp))

    def test_under_budget_is_a_noop(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        sha = store.put_blob(b"x" * 100)
        report = store.gc(10_000)
        assert report["removed_objects"] == 0
        assert report["dropped_snapshots"] == 0
        assert report["before_bytes"] == report["after_bytes"]
        assert store.get_blob(sha) == b"x" * 100

    def test_evicts_least_recently_verified_first(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        old = store.put_blob(b"a" * 400)
        new = store.put_blob(b"b" * 400)
        self._age(store, old, "bin", 600)
        report = store.gc(500)
        assert report["removed_objects"] == 1
        assert report["after_bytes"] <= 500
        with pytest.raises(StoreError):
            store.get_blob(old)
        assert store.get_blob(new) == b"b" * 400

    def test_verified_read_saves_a_blob_from_eviction(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        first = store.put_blob(b"a" * 400)
        second = store.put_blob(b"b" * 400)
        self._age(store, first, "bin", 600)
        self._age(store, second, "bin", 300)
        store.get_blob(first)  # refreshes mtime: now most recent
        store.gc(500)
        assert store.get_blob(first) == b"a" * 400
        with pytest.raises(StoreError):
            store.get_blob(second)

    def test_compacts_snapshots_referencing_evicted_shas(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        doomed = store.put_blob(b"a" * 400)
        kept = store.put_blob(b"b" * 400)
        self._age(store, doomed, "bin", 600)
        store.append_snapshot("cfg", "slab:m", {"blob": doomed})
        store.append_snapshot("cfg", "other", {"blob": kept})
        report = store.gc(500)
        assert report["removed_objects"] == 1
        assert report["dropped_snapshots"] == 1
        assert store.load_snapshot("cfg", "slab:m") is None
        assert store.load_snapshot("cfg", "other") == {"blob": kept}

    def test_publish_after_gc_works(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        sha = store.put_blob(b"a" * 400)
        store.append_snapshot("cfg", "slab:m", {"blob": sha})
        store.gc(0)
        fresh = store.put_blob(b"c" * 100)
        store.append_snapshot("cfg", "slab:m", {"blob": fresh})
        assert store.load_snapshot("cfg", "slab:m") == {"blob": fresh}
        assert store.get_blob(fresh) == b"c" * 100
