"""Persistent slab artifacts end to end: blob round-trips, the warm
load path, and *every* corruption vector degrading to a cold rebuild
(RL532) with correct answers — never a stale or garbage slab."""

import hashlib
import os
import struct

import pytest

from repro.core.config import AnalysisConfig
from repro.core.driver import Analyzer, analyze
from repro.store.artifacts import ArtifactStore, MemoryStore, StoreError
from repro.store.fingerprints import config_key
from repro.store.slabs import SLAB_SCHEMA, deserialize_slab, serialize_slab

SOURCE = """
program m
  call foo(3)
  call bar(7)
end
subroutine foo(a)
  integer a, b
  b = a + 1
  call bar(b)
end
subroutine bar(c)
  integer c, d
  d = c * 2
  write d
end
"""


def flat_config():
    return AnalysisConfig(flat_engine=True)


def canonical(val):
    """Class-aware VAL image (``True == 1`` under plain ``==``)."""
    return {
        proc: {key: (type(v), v) for key, v in env.items()}
        for proc, env in val.items()
    }


def publish(store):
    """One cold store-backed run; returns (analyzer, slab meta, blob)."""
    analyzer = Analyzer(SOURCE, store=store)
    analyzer.run(flat_config())
    meta = store.load_snapshot(config_key(flat_config()), "slab:m")
    assert meta is not None, "cold flat run must publish its slab"
    return analyzer, meta, store.get_blob(meta["blob"])


def assert_cold_fallback(result):
    """The degraded run: RL532 recorded, store fallback counted, and
    the answers identical to a from-scratch flat analyze."""
    assert any(d.code == "RL532" for d in result.degradations)
    assert result.incremental is not None
    assert result.incremental.store_fallbacks == 1
    fresh = analyze(SOURCE, flat_config())
    assert canonical(result.solved.val) == canonical(fresh.solved.val)
    assert result.solved.reached == fresh.solved.reached


class TestRoundtrip:
    def test_reserialization_is_byte_stable(self):
        _, _, blob = publish(MemoryStore())
        assert serialize_slab(deserialize_slab(blob)) == blob

    def test_blob_magic_and_schema(self):
        _, _, blob = publish(MemoryStore())
        assert blob[:4] == b"RSLB"
        schema, _ = struct.unpack_from("<II", blob, 4)
        assert schema == SLAB_SCHEMA

    def test_warm_run_loads_instead_of_building(self):
        analyzer, _, _ = publish(MemoryStore())
        warm = analyzer.run(flat_config())
        assert warm.incremental.mode == "slab"
        assert warm.solved.slab_load_seconds > 0.0
        assert warm.solved.slab_build_seconds == 0.0
        fresh = analyze(SOURCE, flat_config())
        assert canonical(warm.solved.val) == canonical(fresh.solved.val)

    def test_survives_disk_restart(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        publish(store)
        reborn = Analyzer(SOURCE, store=ArtifactStore(str(tmp_path / "store")))
        warm = reborn.run(flat_config())
        assert warm.incremental.mode == "slab"


class TestCorruption:
    """Tampered blobs hit two independent guards: the disk store's
    content addressing, and the deserializer's own magic/checksum/schema
    checks (which also protect stores that do not verify reads)."""

    def test_truncated_blob_rebuilds_cold(self):
        store = MemoryStore()
        analyzer, meta, blob = publish(store)
        store._blobs[meta["blob"]] = blob[: len(blob) // 2]
        assert_cold_fallback(analyzer.run(flat_config()))

    def test_bit_flipped_blob_rebuilds_cold(self):
        store = MemoryStore()
        analyzer, meta, blob = publish(store)
        flipped = bytearray(blob)
        flipped[len(flipped) // 2] ^= 0x40
        store._blobs[meta["blob"]] = bytes(flipped)
        assert_cold_fallback(analyzer.run(flat_config()))

    def test_version_skewed_blob_rebuilds_cold(self):
        # a blob legitimately written by a future layout carries a
        # *valid* trailer, so the schema check alone must reject it
        store = MemoryStore()
        analyzer, meta, blob = publish(store)
        body = bytearray(blob[:-32])
        struct.pack_into("<I", body, 4, SLAB_SCHEMA + 1)
        skewed = bytes(body) + hashlib.sha256(bytes(body)).digest()
        with pytest.raises(StoreError, match="schema"):
            deserialize_slab(skewed)
        store._blobs[meta["blob"]] = skewed
        assert_cold_fallback(analyzer.run(flat_config()))

    def test_disk_tamper_caught_by_content_addressing(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        analyzer, meta, blob = publish(store)
        target = os.path.join(store.path, "objects", f"{meta['blob']}.bin")
        with open(target, "wb") as handle:
            handle.write(blob[:-1] + bytes([blob[-1] ^ 1]))
        assert_cold_fallback(analyzer.run(flat_config()))

    def test_deserialize_rejects_bad_magic(self):
        _, _, blob = publish(MemoryStore())
        with pytest.raises(StoreError, match="untrusted"):
            deserialize_slab(b"XXXX" + blob[4:])

    def test_deserialize_rejects_truncation(self):
        _, _, blob = publish(MemoryStore())
        with pytest.raises(StoreError):
            deserialize_slab(blob[:-7])

    def test_degraded_run_republishes_a_good_slab(self):
        store = MemoryStore()
        analyzer, meta, blob = publish(store)
        store._blobs[meta["blob"]] = blob[:10]
        assert_cold_fallback(analyzer.run(flat_config()))
        # the cold rebuild published a fresh blob: next run is warm again
        healed = analyzer.run(flat_config())
        assert healed.incremental.mode == "slab"
        assert not healed.degradations
