"""Incremental re-analysis end to end: warm starts, invalidation scope,
and every corruption path degrading to a cold run (RL530/RL531) instead
of crashing or going unsound."""

import json
import os

import pytest

from repro.core.config import AnalysisConfig
from repro.core.driver import Analyzer, analyze
from repro.store.artifacts import ArtifactStore, MemoryStore
from repro.store.fingerprints import config_key

SOURCE = """
program m
  call foo(3)
  call bar(7)
end
subroutine foo(a)
  integer a, b
  b = a + 1
  call bar(b)
end
subroutine bar(c)
  integer c, d
  d = c * 2
  write d
end
"""

LEAF_EDIT = SOURCE.replace("d = c * 2", "d = c * 3")
ROOT_EDIT = SOURCE.replace("call foo(3)", "call foo(4)")


def assert_equivalent(result, source, config=None):
    cold = analyze(source, config)
    assert result.solved.val == cold.solved.val
    assert result.solved.reached == cold.solved.reached
    assert result.all_constants() == cold.all_constants()
    assert result.constants_found == cold.constants_found
    assert result.references_substituted == cold.references_substituted


class TestWarmReanalyze:
    def test_first_run_publishes_not_warm(self):
        analyzer = Analyzer(SOURCE)
        result = analyzer.run(incremental=True)
        assert result.incremental.mode == "cold"
        assert result.incremental.detail == "no snapshot"
        # ... but it published: the next incremental run is warm
        again = analyzer.run(incremental=True)
        assert again.incremental.mode == "warm"
        assert again.incremental.clean == 3
        assert again.solved.regions_warm == 3

    def test_leaf_edit_invalidates_only_leaf(self):
        analyzer = Analyzer(SOURCE)
        analyzer.run()
        result = analyzer.reanalyze(LEAF_EDIT)
        assert result.incremental.mode == "warm"
        assert result.incremental.changed == ("bar",)
        assert result.incremental.invalid == ("bar",)
        assert result.incremental.clean == 2
        assert result.solved.regions_warm == 2
        assert not result.degradations
        assert_equivalent(result, LEAF_EDIT)

    def test_root_edit_invalidates_descendants(self):
        analyzer = Analyzer(SOURCE)
        analyzer.run()
        result = analyzer.reanalyze(ROOT_EDIT)
        assert result.incremental.mode == "warm"
        assert result.incremental.changed == ("m",)
        assert set(result.incremental.invalid) == {"m", "foo", "bar"}
        assert result.incremental.clean == 0
        assert_equivalent(result, ROOT_EDIT)

    def test_warm_run_does_less_work(self):
        analyzer = Analyzer(SOURCE)
        analyzer.run()
        warm = analyzer.reanalyze(LEAF_EDIT)
        cold = analyze(LEAF_EDIT)
        assert warm.solved.regions < cold.solved.regions
        assert warm.solved.evaluations <= cold.solved.evaluations

    def test_config_partitions_the_store(self):
        analyzer = Analyzer(SOURCE)
        analyzer.run(AnalysisConfig())
        other = AnalysisConfig(use_mod=False)
        result = analyzer.run(other, incremental=True)
        # no snapshot exists for this configuration yet: cold, no fallback
        assert result.incremental.mode == "cold"
        assert result.incremental.store_fallbacks == 0

    def test_degraded_run_is_not_published(self):
        recursive = """
program m
  call ping(9)
end
subroutine ping(n)
  integer n
  call pong(n - 1)
end
subroutine pong(n)
  integer n
  call ping(n - 1)
end
"""
        store = MemoryStore()
        config = AnalysisConfig(max_solver_passes=1)
        result = analyze(recursive, config, store=store, incremental=True)
        assert result.degradations  # the ladder stepped
        assert store.load_snapshot(config_key(config), "m") is None


class TestCorruptionDegradesToCold:
    """The RL530/RL531 chaos harness: every way the on-disk store can rot
    must produce a cold (still correct) run plus a diagnostic — never a
    crash, never a stale result."""

    def warmed_store(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        analyze(SOURCE, store=store)
        return store

    def test_corrupt_env_object_falls_back(self, tmp_path):
        store = self.warmed_store(tmp_path)
        snapshot = store.load_snapshot(config_key(AnalysisConfig()), "m")
        env_sha = snapshot["procs"]["foo"]["env"]
        target = os.path.join(store.path, "objects", f"{env_sha}.json")
        with open(target, "w") as handle:
            handle.write('{"tampered":true}')
        result = analyze(LEAF_EDIT, store=store, incremental=True)
        assert result.incremental.mode == "fallback"
        assert result.incremental.store_fallbacks == 1
        assert any(r.code == "RL530" for r in result.degradations)
        assert_equivalent(result, LEAF_EDIT)

    def test_missing_env_object_falls_back(self, tmp_path):
        store = self.warmed_store(tmp_path)
        snapshot = store.load_snapshot(config_key(AnalysisConfig()), "m")
        env_sha = snapshot["procs"]["bar"]["env"]
        os.unlink(os.path.join(store.path, "objects", f"{env_sha}.json"))
        result = analyze(SOURCE, store=store, incremental=True)
        assert result.incremental.mode == "fallback"
        assert_equivalent(result, SOURCE)

    def test_foreign_index_resets_with_rl531(self, tmp_path):
        store = self.warmed_store(tmp_path)
        with open(store._index_path) as handle:
            lines = handle.readlines()
        lines[0] = json.dumps({"kind": "header", "schema": 999}) + "\n"
        with open(store._index_path, "w") as handle:
            handle.writelines(lines)
        result = analyze(SOURCE, store=store, incremental=True)
        assert result.incremental.mode == "cold"
        assert any(r.code == "RL531" for r in result.degradations)
        assert_equivalent(result, SOURCE)

    def test_malformed_snapshot_meta_falls_back(self, tmp_path):
        store = self.warmed_store(tmp_path)
        store.append_snapshot(
            config_key(AnalysisConfig()), "m", {"schema": 1, "procs": "junk"}
        )
        result = analyze(SOURCE, store=store, incremental=True)
        assert result.incremental.mode == "fallback"
        assert any(r.code == "RL530" for r in result.degradations)
        assert_equivalent(result, SOURCE)

    def test_fallback_self_heals(self, tmp_path):
        store = self.warmed_store(tmp_path)
        snapshot = store.load_snapshot(config_key(AnalysisConfig()), "m")
        env_sha = snapshot["procs"]["foo"]["env"]
        target = os.path.join(store.path, "objects", f"{env_sha}.json")
        with open(target, "w") as handle:
            handle.write("garbage")
        fallback = analyze(SOURCE, store=store, incremental=True)
        assert fallback.incremental.mode == "fallback"
        # the fallback run republished: the store is trustworthy again
        healed = analyze(SOURCE, store=store, incremental=True)
        assert healed.incremental.mode == "warm"
        assert healed.incremental.store_fallbacks == 0
        assert not healed.degradations


class TestSweepSharesStore:
    def test_second_sweep_runs_warm(self, tmp_path):
        from repro.resilience.executor import SweepPolicy, run_sweep

        sources = {"prog": SOURCE}
        configs = {"pt": AnalysisConfig()}
        policy = SweepPolicy(store_path=str(tmp_path / "store"))
        first = run_sweep(sources, configs, policy)
        assert not first.failures
        assert first.summaries["prog"]["pt"].solver_counters["regions_warm"] == 0
        second = run_sweep(sources, configs, policy)
        assert not second.failures
        counters = second.summaries["prog"]["pt"].solver_counters
        assert counters["regions_warm"] == 3
        assert counters["regions"] == 0

    def test_worker_processes_share_store(self, tmp_path):
        from repro.resilience.executor import SweepPolicy, run_sweep

        # distinct main-program names: snapshots are keyed by
        # (config, program), so two programs both named "m" would
        # overwrite each other's index lines
        sources = {"prog": SOURCE, "edited": LEAF_EDIT.replace("program m", "program m2")}
        configs = {"pt": AnalysisConfig()}
        policy = SweepPolicy(
            processes=2, store_path=str(tmp_path / "store")
        )
        first = run_sweep(sources, configs, policy)
        assert not first.failures
        second = run_sweep(sources, configs, policy)
        assert not second.failures
        for name in sources:
            counters = second.summaries[name]["pt"].solver_counters
            assert counters["regions_warm"] == 3
