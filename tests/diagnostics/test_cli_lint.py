"""CLI tests for ``repro lint``, ``analyze --verify``, and ``run --check``."""

import json

import pytest

from repro.cli import main

WARNING_ONLY = """
program main
  integer n, m
  n = 1
  m = 2
  call s(n, m)
  write n
end
subroutine s(a, pad)
  integer a, pad
  a = a + 1
end
"""

ERRONEOUS = """
program main
  logical flag
  flag = .true.
  call s(flag)
end
subroutine s(a)
  integer a
  a = 1
end
"""

CLEAN = """
program main
  integer n
  n = 2
  call s(n)
  write n
end
subroutine s(a)
  integer a
  a = a * 2
end
"""


@pytest.fixture
def warn_file(tmp_path):
    path = tmp_path / "warn.f"
    path.write_text(WARNING_ONLY)
    return str(path)


@pytest.fixture
def error_file(tmp_path):
    path = tmp_path / "error.f"
    path.write_text(ERRONEOUS)
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.f"
    path.write_text(CLEAN)
    return str(path)


class TestLint:
    def test_warnings_exit_zero(self, warn_file, capsys):
        assert main(["lint", warn_file]) == 0
        out = capsys.readouterr().out
        assert "RL121" in out
        assert "warning" in out

    def test_errors_exit_one(self, error_file, capsys):
        assert main(["lint", error_file]) == 1
        assert "RL104" in capsys.readouterr().out

    def test_clean_file(self, clean_file, capsys):
        assert main(["lint", clean_file]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_json_format(self, warn_file, capsys):
        assert main(["lint", warn_file, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["summary"]["warning"] >= 1
        assert all(d["path"] == warn_file for d in payload["diagnostics"])

    def test_sarif_format(self, warn_file, capsys):
        assert main(["lint", warn_file, "--format", "sarif"]) == 0
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"]

    def test_deterministic_output(self, warn_file, capsys):
        main(["lint", warn_file, "--format", "sarif"])
        first = capsys.readouterr().out
        main(["lint", warn_file, "--format", "sarif"])
        assert capsys.readouterr().out == first

    def test_multiple_files_merge(self, warn_file, error_file, capsys):
        assert main(["lint", warn_file, error_file]) == 1
        out = capsys.readouterr().out
        assert "RL121" in out and "RL104" in out

    def test_select_runs_one_pass(self, warn_file, capsys):
        assert main(["lint", warn_file, "--select", "unreachable-procedure"]) == 0
        assert "RL121" not in capsys.readouterr().out

    def test_sanitize_flag(self, clean_file, capsys):
        assert main(["lint", clean_file, "--sanitize"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_list_passes(self, capsys):
        assert main(["lint", "--list-passes"]) == 0
        out = capsys.readouterr().out
        assert "lattice-sanitizer" in out
        assert "(opt-in)" in out

    def test_no_input_exit_two(self, capsys):
        assert main(["lint"]) == 2
        assert "no input" in capsys.readouterr().err

    def test_parse_error_reported_as_diagnostic(self, tmp_path, capsys):
        path = tmp_path / "broken.f"
        path.write_text("program main\n  integer n\n  n = = 1\nend\n")
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "RL000" in out

    def test_output_file(self, warn_file, tmp_path, capsys):
        target = tmp_path / "report.json"
        assert main(["lint", warn_file, "--format", "json",
                     "-o", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["summary"]["warning"] >= 1
        assert "wrote" in capsys.readouterr().err


class TestAnalyzeVerify:
    def test_clean_program_verifies(self, clean_file, capsys):
        assert main(["analyze", clean_file, "--verify"]) == 0
        assert "invariants hold" in capsys.readouterr().err


class TestRunCheck:
    def test_sound_execution(self, clean_file, capsys):
        assert main(["run", clean_file, "--check"]) == 0
        assert "claims hold" in capsys.readouterr().err
