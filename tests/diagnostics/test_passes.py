"""One positive and one negative case for every shipped checker.

Positives the front end cannot produce (the resolver rejects bad arity,
the builder never emits malformed jump-function tables) are staged by
mutating the analysis result before running the pass — exactly the
programmatically-built inputs those passes guard against.
"""

import pytest

from repro.core.config import JumpFunctionKind
from repro.core.exprs import ValueExpr, const_expr, entry_expr
from repro.core.jump_functions import CallSiteFunctions, JumpFunction
from repro.diagnostics import LintContext, run_passes

CLEAN = """
program main
  integer n
  n = 1
  call s(n)
  write n
end
subroutine s(a)
  integer a
  a = a + 1
end
"""


def lint(source, pass_name):
    return run_passes(source, select=[pass_name])


def private_ctx(source):
    """A LintContext safe to mutate: bypasses the shared stage-0 cache
    (mutating a cached lowered program would poison every later analyze
    of the same source text)."""
    from repro.core.driver import analyze

    return LintContext(result=analyze(source, cache=None))


def codes(report):
    return [d.code for d in report.diagnostics]


class TestIRWellFormed:
    def test_clean_program(self):
        assert lint(CLEAN, "ir-wellformed").diagnostics == []

    def test_broken_cfg_reported(self):
        ctx = private_ctx(CLEAN)
        cfg = ctx.lowered.procedures["s"].cfg
        cfg.blocks[cfg.exit_id].instrs = []
        report = run_passes(ctx, select=["ir-wellformed"])
        assert "RL001" in codes(report)
        assert all(d.severity.value == "error" for d in report.diagnostics)


class TestCallBinding:
    def test_clean_program(self):
        assert lint(CLEAN, "call-binding").diagnostics == []

    def test_byref_type_mismatch(self):
        source = """
program main
  logical flag
  flag = .true.
  call s(flag)
end
subroutine s(a)
  integer a
  a = 1
end
"""
        report = lint(source, "call-binding")
        assert codes(report) == ["RL104"]

    def test_byvalue_logical_conversion_is_error(self):
        source = """
program main
  call s(.true.)
end
subroutine s(a)
  integer a
  a = 1
end
"""
        report = lint(source, "call-binding")
        assert codes(report) == ["RL105"]
        assert report.has_errors

    def test_shape_mismatch_on_mutated_call(self):
        # the front end rejects shape mismatches in parsed programs
        # (lower's _check_argument_shapes), so stage one by mutation
        from repro.ir.instructions import ArgumentKind

        ctx = private_ctx(CLEAN)
        (site_id,) = ctx.lowered.call_sites
        _, call = ctx.lowered.call_sites[site_id]
        call.args[0].kind = ArgumentKind.ARRAY
        report = run_passes(ctx, select=["call-binding"])
        assert codes(report) == ["RL103"]

    def test_arity_mismatch_on_mutated_call(self):
        ctx = private_ctx(CLEAN)
        (site_id,) = ctx.lowered.call_sites
        _, call = ctx.lowered.call_sites[site_id]
        call.args.pop()
        report = run_passes(ctx, select=["call-binding"])
        assert codes(report) == ["RL102"]

    def test_unknown_callee_on_mutated_call(self):
        ctx = private_ctx(CLEAN)
        (site_id,) = ctx.lowered.call_sites
        _, call = ctx.lowered.call_sites[site_id]
        call.callee = "phantom"
        report = run_passes(ctx, select=["call-binding"])
        assert codes(report) == ["RL101"]


class TestParamAliasing:
    def test_clean_program(self):
        assert lint(CLEAN, "param-aliasing").diagnostics == []

    def test_same_actual_twice_with_mod(self):
        source = """
program main
  integer n
  n = 1
  call swap(n, n)
end
subroutine swap(a, b)
  integer a, b, t
  t = a
  a = b
  b = t
end
"""
        report = lint(source, "param-aliasing")
        assert codes(report) == ["RL111"]

    def test_same_actual_twice_readonly_ok(self):
        source = """
program main
  integer n
  n = 1
  call look(n, n)
end
subroutine look(a, b)
  integer a, b
  write a + b
end
"""
        assert lint(source, "param-aliasing").diagnostics == []

    def test_global_passed_and_touched_via_common(self):
        source = """
program main
  common /c/ g
  integer g
  g = 1
  call s(g)
end
subroutine s(a)
  integer a
  common /c/ h
  integer h
  a = h + 1
end
"""
        report = lint(source, "param-aliasing")
        assert codes(report) == ["RL112"]

    def test_global_passed_but_callee_ignores_common(self):
        source = """
program main
  common /c/ g
  integer g
  g = 1
  call s(g)
  write g
end
subroutine s(a)
  integer a
  a = a + 1
end
"""
        assert lint(source, "param-aliasing").diagnostics == []


class TestDeadFormal:
    def test_used_formals_clean(self):
        assert lint(CLEAN, "dead-formal").diagnostics == []

    def test_never_referenced_formal(self):
        source = """
program main
  integer n, m
  n = 1
  m = 2
  call s(n, m)
end
subroutine s(a, pad)
  integer a, pad
  a = a + 1
end
"""
        report = lint(source, "dead-formal")
        assert codes(report) == ["RL121"]
        assert "pad" in report.diagnostics[0].message


class TestUnreferencedGlobal:
    def test_used_global_clean(self):
        source = """
program main
  common /c/ g
  integer g
  g = 1
  write g
end
"""
        assert lint(source, "unreferenced-global").diagnostics == []

    def test_untouched_common_member(self):
        source = """
program main
  common /c/ g, spare
  integer g, spare
  g = 1
  write g
end
"""
        report = lint(source, "unreferenced-global")
        assert codes(report) == ["RL122"]
        assert "spare" in report.diagnostics[0].message


class TestUnreachableProcedure:
    def test_all_reachable_clean(self):
        assert lint(CLEAN, "unreachable-procedure").diagnostics == []

    def test_never_called_procedure(self):
        source = CLEAN + """
subroutine lonely(q)
  integer q
  q = q + 1
end
"""
        report = lint(source, "unreachable-procedure")
        assert codes(report) == ["RL123"]
        assert report.diagnostics[0].procedure == "lonely"


class _ConstWithSupport(ValueExpr):
    """A malformed expression: claims constancy yet reads the environment.

    The smart constructors can never build this (folding strips support),
    which is exactly why the verifier has to check for it.
    """

    def support(self):
        return frozenset({"a"})

    def support_order(self):
        return ("a",)

    def evaluate(self, env):
        return 3

    @property
    def is_constant(self):
        return True


class TestJumpFunctionWF:
    def test_builder_output_clean(self):
        assert lint(CLEAN, "jump-function-wf").diagnostics == []

    @pytest.fixture
    def ctx(self):
        ctx = private_ctx(CLEAN)
        ctx.forward.index = None  # force the index to rebuild if solved
        return ctx

    def _site(self, ctx):
        (site_id,) = ctx.forward.sites
        return site_id, ctx.forward.sites[site_id]

    def test_unknown_procedure(self, ctx):
        site_id, site = self._site(ctx)
        ctx.forward.sites[site_id] = CallSiteFunctions(
            site_id, caller="main", callee="phantom", formals=site.formals
        )
        report = run_passes(ctx, select=["jump-function-wf"])
        assert "RL201" in codes(report)

    def test_unknown_entry_key(self, ctx):
        _, site = self._site(ctx)
        site.formals["zz"] = JumpFunction(
            const_expr(1), JumpFunctionKind.PASS_THROUGH
        )
        report = run_passes(ctx, select=["jump-function-wf"])
        assert "RL202" in codes(report)

    def test_support_outside_caller(self, ctx):
        _, site = self._site(ctx)
        site.formals["a"] = JumpFunction(
            entry_expr("ghost"), JumpFunctionKind.PASS_THROUGH
        )
        report = run_passes(ctx, select=["jump-function-wf"])
        assert "RL203" in codes(report)

    def test_constant_with_residual_support(self, ctx):
        _, site = self._site(ctx)
        site.formals["a"] = JumpFunction(
            _ConstWithSupport(), JumpFunctionKind.POLYNOMIAL
        )
        report = run_passes(ctx, select=["jump-function-wf"])
        assert "RL204" in codes(report)


class TestLatticeSanitizerPass:
    def test_clean_program_no_findings(self):
        report = lint(CLEAN, "lattice-sanitizer")
        assert report.diagnostics == []
        assert report.passes_run == ["lattice-sanitizer"]
