"""Tests for the text/JSON/SARIF emitters: structure and determinism."""

import json

from repro.diagnostics import (
    Diagnostic,
    LintReport,
    Severity,
    emit_json,
    emit_sarif,
    emit_text,
)
from repro.frontend.source import SourceLocation, SourceSpan


def sample_report():
    span = SourceSpan(
        SourceLocation(line=2, column=3, offset=10),
        SourceLocation(line=2, column=8, offset=15),
    )
    return LintReport(
        diagnostics=[
            Diagnostic("RL104", Severity.ERROR, "type clash",
                       pass_name="call-binding", procedure="main",
                       span=span, path="a.f"),
            Diagnostic("RL121", Severity.WARNING, "dead formal",
                       pass_name="dead-formal", procedure="s", path="a.f"),
        ],
        passes_run=["call-binding", "dead-formal"],
    ).sorted()


class TestText:
    def test_lines_and_summary(self):
        text = emit_text(sample_report())
        assert "a.f:2:3: error RL104 [call-binding] type clash" in text
        assert text.rstrip().endswith(
            "2 finding(s): 1 error(s), 1 warning(s), 0 info"
        )

    def test_empty_report_is_just_summary(self):
        text = emit_text(LintReport())
        assert text == "0 finding(s): 0 error(s), 0 warning(s), 0 info\n"


class TestJson:
    def test_structure(self):
        payload = json.loads(emit_json(sample_report()))
        assert payload["version"] == 1
        assert payload["summary"] == {"error": 1, "warning": 1, "info": 0}
        assert payload["passes"] == ["call-binding", "dead-formal"]
        (first, second) = payload["diagnostics"]
        assert {first["code"], second["code"]} == {"RL104", "RL121"}

    def test_span_fields_present_only_when_known(self):
        payload = json.loads(emit_json(sample_report()))
        by_code = {d["code"]: d for d in payload["diagnostics"]}
        assert by_code["RL104"]["line"] == 2
        assert "line" not in by_code["RL121"]


class TestSarif:
    def test_envelope(self):
        log = json.loads(emit_sarif(sample_report()))
        assert log["version"] == "2.1.0"
        assert log["$schema"].endswith("sarif-2.1.0.json")
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"

    def test_rules_cover_every_code(self):
        log = json.loads(emit_sarif(sample_report()))
        (run,) = log["runs"]
        rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
        assert rule_ids == sorted({"RL104", "RL121"})
        for result in run["results"]:
            assert rule_ids[result["ruleIndex"]] == result["ruleId"]

    def test_levels_and_locations(self):
        log = json.loads(emit_sarif(sample_report()))
        (run,) = log["runs"]
        by_rule = {r["ruleId"]: r for r in run["results"]}
        assert by_rule["RL104"]["level"] == "error"
        assert by_rule["RL121"]["level"] == "warning"
        location = by_rule["RL104"]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "a.f"
        assert location["region"]["startLine"] == 2

    def test_info_maps_to_note(self):
        report = LintReport(
            diagnostics=[Diagnostic("RL999", Severity.INFO, "fyi")]
        )
        log = json.loads(emit_sarif(report))
        assert log["runs"][0]["results"][0]["level"] == "note"


class TestDeterminism:
    def test_all_formats_bit_identical_across_calls(self):
        for emitter in (emit_text, emit_json, emit_sarif):
            assert emitter(sample_report()) == emitter(sample_report())
