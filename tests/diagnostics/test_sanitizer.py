"""Tests for the lattice sanitizer: unit-level hook behavior, the
engine-threaded integration path (a hand-written non-monotone transfer
must be *reported*, not crashed on), and the sparse/dense cross-check."""

import pytest

from repro.core.config import JumpFunctionKind
from repro.core.driver import analyze
from repro.core.jump_functions import JumpFunction
from repro.core.exprs import ValueExpr
from repro.core.lattice import BOTTOM, TOP
from repro.core.solver import solve, solve_dense
from repro.diagnostics.sanitizer import (
    MAX_CHAIN_DEPTH,
    LatticeSanitizer,
    cross_check,
)


class TestObserveUpdate:
    def test_descending_chain_is_clean(self):
        sanitizer = LatticeSanitizer()
        sanitizer.observe_update("p", "x", TOP, 5)
        sanitizer.observe_update("p", "x", 5, BOTTOM)
        assert sanitizer.clean
        assert sanitizer.updates_observed == 2

    def test_rise_reported(self):
        sanitizer = LatticeSanitizer()
        sanitizer.observe_update("p", "x", BOTTOM, 5)
        (violation,) = sanitizer.violations
        assert violation.kind == "value-rise"
        assert violation.code == "RL302"

    def test_constant_to_different_constant_is_a_rise(self):
        # meet(3, 2) is ⊥, so 3 → 2 moves sideways, not down
        sanitizer = LatticeSanitizer()
        sanitizer.observe_update("p", "x", 3, 2)
        (violation,) = sanitizer.violations
        assert violation.kind == "value-rise"

    def test_bool_int_confusion_is_a_rise(self):
        # .true. and 1 are distinct lattice constants (True == 1 in Python)
        sanitizer = LatticeSanitizer()
        sanitizer.observe_update("p", "x", 1, True)
        assert not sanitizer.clean

    def test_chain_depth_overflow_reported(self):
        # a buggy engine that keeps re-lowering from ⊤ descends each step
        # yet lowers one binding more often than the lattice depth allows
        sanitizer = LatticeSanitizer()
        for step in range(MAX_CHAIN_DEPTH + 1):
            sanitizer.observe_update("p", "x", TOP, step + 1)
        kinds = [v.kind for v in sanitizer.violations]
        assert kinds == ["chain-depth"]
        assert sanitizer.violations[0].code == "RL303"


class TestObserveTransfer:
    def test_descending_evaluations_clean(self):
        sanitizer = LatticeSanitizer()
        sanitizer.observe_transfer(0, "q", "k", 7)
        sanitizer.observe_transfer(0, "q", "k", BOTTOM)
        assert sanitizer.clean
        assert sanitizer.transfers_observed == 2

    def test_rising_evaluation_reported(self):
        sanitizer = LatticeSanitizer()
        sanitizer.observe_transfer(3, "q", "k", BOTTOM)
        sanitizer.observe_transfer(3, "q", "k", 7)
        (violation,) = sanitizer.violations
        assert violation.kind == "non-monotone-transfer"
        assert violation.site_id == 3
        assert violation.diagnostic().code == "RL301"

    def test_sites_tracked_independently(self):
        sanitizer = LatticeSanitizer()
        sanitizer.observe_transfer(0, "q", "k", BOTTOM)
        sanitizer.observe_transfer(1, "q", "k", 7)
        assert sanitizer.clean


class TestCrossCheck:
    def test_identical_vals_clean(self):
        val = {"p": {"x": 3, "y": BOTTOM}}
        assert cross_check(val, val) == []

    def test_divergent_binding_reported(self):
        sparse = {"p": {"x": 3}}
        dense = {"p": {"x": BOTTOM}}
        (violation,) = cross_check(sparse, dense)
        assert violation.kind == "sparse-dense-divergence"
        assert violation.code == "RL304"
        assert "3" in violation.detail

    def test_missing_binding_reported(self):
        (violation,) = cross_check({"p": {}}, {"p": {"x": 1}})
        assert "missing from sparse" in violation.detail


RECURSIVE = """
program main
  integer n
  n = 3
  call t(n)
end
subroutine t(a)
  integer a
  call s(a)
  if (a > 0) then
    call t(a - 1)
  endif
end
subroutine s(b)
  integer b
  b = b + 1
end
"""


class _RisingExpr(ValueExpr):
    """A deliberately non-monotone jump function: as the caller's entry
    environment descends, successive evaluations *rise* (10, then 20).
    Nothing the builder produces behaves this way — this simulates a
    buggy future jump-function implementation."""

    def __init__(self):
        self.calls = 0

    def support(self):
        return frozenset({"a"})

    def support_order(self):
        return ("a",)

    def evaluate(self, env):
        self.calls += 1
        return 10 * min(self.calls, 2)


def _solve_with_rising_edge(sanitizer=None):
    # cache=None: the jump-function table is about to be tampered with
    result = analyze(RECURSIVE, cache=None)
    forward = result.forward
    site_to_s = next(
        site for site in forward.sites.values() if site.callee == "s"
    )
    site_to_s.formals["b"] = JumpFunction(
        _RisingExpr(), JumpFunctionKind.POLYNOMIAL
    )
    forward.index = None  # rebuild the support index over the tampered table
    return solve(
        result.lowered, result.call_graph, forward, sanitizer=sanitizer
    )


class TestEngineIntegration:
    def test_clean_solve_has_no_violations(self):
        result = analyze(RECURSIVE, cache=None)
        sanitizer = LatticeSanitizer()
        solve(
            result.lowered, result.call_graph, result.forward,
            sanitizer=sanitizer,
        )
        assert sanitizer.clean
        assert sanitizer.transfers_observed > 0
        assert sanitizer.updates_observed > 0

    def test_non_monotone_transfer_caught_not_crashed(self):
        sanitizer = LatticeSanitizer()
        solved = _solve_with_rising_edge(sanitizer)  # must not raise
        assert solved.val["s"]["b"] is BOTTOM  # the meet still floors it
        rises = [
            v for v in sanitizer.violations
            if v.kind == "non-monotone-transfer"
        ]
        assert rises, "the rising jump function went unnoticed"
        violation = rises[0]
        assert violation.procedure == "s"
        assert violation.key == "b"
        diagnostic = violation.diagnostic()
        assert diagnostic.code == "RL301"
        assert diagnostic.severity.value == "error"

    def test_detached_engine_result_unchanged(self):
        # attaching the sanitizer must not perturb the fixpoint
        result = analyze(RECURSIVE, cache=None)
        plain = solve(result.lowered, result.call_graph, result.forward)
        observed = solve(
            result.lowered, result.call_graph, result.forward,
            sanitizer=LatticeSanitizer(),
        )
        assert plain.val == observed.val

    def test_sparse_dense_cross_check_clean(self):
        result = analyze(RECURSIVE, cache=None)
        sparse = solve(result.lowered, result.call_graph, result.forward)
        dense = solve_dense(result.lowered, result.call_graph, result.forward)
        assert cross_check(sparse.val, dense.val) == []


@pytest.mark.slow
class TestFullSuite:
    def test_sanitizer_clean_on_every_workload(self):
        from repro.workloads import load_suite

        for workload in load_suite(scale=1.0).values():
            result = analyze(workload.source, cache=None)
            sanitizer = LatticeSanitizer()
            sparse = solve(
                result.lowered, result.call_graph, result.forward,
                sanitizer=sanitizer,
            )
            assert sanitizer.clean, (
                f"{workload.name}: {[str(v) for v in sanitizer.violations]}"
            )
            dense = solve_dense(
                result.lowered, result.call_graph, result.forward
            )
            assert cross_check(sparse.val, dense.val) == []
