"""Tests for the diagnostics framework: report type, registry, driver."""

import pytest

from repro.diagnostics import (
    Diagnostic,
    LintContext,
    LintPass,
    LintReport,
    Registry,
    Severity,
    default_registry,
    run_passes,
)
from repro.frontend.source import SourceLocation, SourceSpan

CLEAN = """
program main
  integer n
  n = 1
  call s(n)
  write n
end
subroutine s(a)
  integer a
  a = a + 1
end
"""


def span_at(offset):
    loc = SourceLocation(line=1, column=offset + 1, offset=offset)
    return SourceSpan(loc, loc)


class TestSeverity:
    def test_rank_order(self):
        assert Severity.INFO.rank < Severity.WARNING.rank < Severity.ERROR.rank

    def test_str_is_value(self):
        assert str(Severity.ERROR) == "error"


class TestDiagnostic:
    def test_sort_orders_by_path_then_offset(self):
        a = Diagnostic("RL9", Severity.INFO, "m", span=span_at(5), path="b.f")
        b = Diagnostic("RL9", Severity.INFO, "m", span=span_at(1), path="b.f")
        c = Diagnostic("RL9", Severity.INFO, "m", span=span_at(9), path="a.f")
        assert sorted([a, b, c], key=Diagnostic.sort_key) == [c, b, a]

    def test_spanless_sorts_first_within_path(self):
        with_span = Diagnostic("RL9", Severity.INFO, "m", span=span_at(0))
        spanless = Diagnostic("RL9", Severity.INFO, "m")
        ordered = sorted([with_span, spanless], key=Diagnostic.sort_key)
        assert ordered[0] is spanless

    def test_format_text_includes_location_and_code(self):
        diag = Diagnostic(
            "RL101", Severity.ERROR, "boom", pass_name="p",
            span=span_at(3), path="x.f",
        )
        assert diag.format_text() == "x.f:1:4: error RL101 [p] boom"

    def test_to_dict_omits_absent_fields(self):
        diag = Diagnostic("RL1", Severity.WARNING, "m", pass_name="p")
        payload = diag.to_dict()
        assert "line" not in payload and "path" not in payload
        assert payload["severity"] == "warning"


class TestRegistry:
    def test_duplicate_name_rejected(self):
        class P(LintPass):
            name = "p"

        registry = Registry()
        registry.register(P())
        with pytest.raises(ValueError, match="duplicate"):
            registry.register(P())

    def test_unknown_name_lists_available(self):
        registry = Registry()

        class P(LintPass):
            name = "only"

        registry.register(P())
        with pytest.raises(KeyError, match="only"):
            registry.get("nope")

    def test_default_passes_exclude_opt_in(self):
        registry = default_registry()
        defaults = {p.name for p in registry.default_passes()}
        assert "lattice-sanitizer" in registry.names()
        assert "lattice-sanitizer" not in defaults


class TestLintReport:
    def test_sorted_dedups(self):
        diag = Diagnostic("RL1", Severity.INFO, "m")
        report = LintReport(diagnostics=[diag, diag]).sorted()
        assert len(report.diagnostics) == 1

    def test_has_errors_and_max_severity(self):
        report = LintReport(diagnostics=[
            Diagnostic("RL1", Severity.WARNING, "w"),
            Diagnostic("RL2", Severity.ERROR, "e"),
        ])
        assert report.has_errors
        assert report.max_severity() is Severity.ERROR
        assert report.counts() == {"error": 1, "warning": 1, "info": 0}

    def test_merged_unions_passes_run(self):
        a = LintReport(passes_run=["x", "y"])
        b = LintReport(passes_run=["y", "z"])
        assert LintReport.merged([a, b]).passes_run == ["x", "y", "z"]


class TestRunPasses:
    def test_select_runs_exactly_named(self):
        report = run_passes(CLEAN, select=["dead-formal"])
        assert report.passes_run == ["dead-formal"]

    def test_enable_appends_opt_in(self):
        report = run_passes(CLEAN, enable=["lattice-sanitizer"])
        assert "lattice-sanitizer" in report.passes_run
        assert "call-binding" in report.passes_run

    def test_unknown_select_raises(self):
        with pytest.raises(KeyError):
            run_passes(CLEAN, select=["no-such-pass"])

    def test_path_stamped_onto_diagnostics(self):
        source = CLEAN + "\nsubroutine lonely\n  integer q\n  q = 1\nend\n"
        report = run_passes(source, path="prog.f")
        assert report.diagnostics
        assert all(d.path == "prog.f" for d in report.diagnostics)

    def test_deterministic_across_runs(self):
        source = CLEAN + "\nsubroutine lonely\n  integer q\n  q = 1\nend\n"
        first = run_passes(source, path="p.f")
        second = run_passes(source, path="p.f")
        assert first.diagnostics == second.diagnostics

    def test_accepts_prebuilt_context(self):
        ctx = LintContext.from_source(CLEAN)
        report = run_passes(ctx, path="ctx.f")
        assert report.passes_run  # ran over the existing analysis
        assert ctx.path == "ctx.f"

    def test_clean_program_has_no_findings(self):
        assert run_passes(CLEAN).diagnostics == []
