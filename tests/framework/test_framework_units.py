"""Unit tests for the framework primitives: the edge-function algebra,
the lattice contracts, and the flow-graph scheduling skeleton."""

from repro.core.lattice import BOTTOM, TOP
from repro.framework import (
    BottomEdge,
    ConstantEdge,
    ConstantLattice,
    EdgeFunction,
    IdentityEdge,
    PowersetLattice,
)
from repro.framework.edges import MeetEdge, SubstitutedEdge
from repro.framework.graph import FlowGraph, reverse_flow_graph


class TestEdgeAlgebra:
    def test_constant_ignores_environment(self):
        edge = ConstantEdge(7)
        assert edge.apply({}) == 7
        assert edge.apply({"x": 1}) == 7
        assert edge.support() == ()
        assert edge.constant_value() == 7

    def test_identity_fetches_its_key(self):
        edge = EdgeFunction.identity("x")
        assert edge.apply({"x": 3}) == 3
        assert edge.apply({}) is BOTTOM
        assert edge.support() == ("x",)
        assert edge.passthrough_key() == "x"

    def test_bottom_is_support_free_and_not_constant(self):
        edge = BottomEdge()
        assert edge.apply({"x": 1}) is BOTTOM
        assert edge.support() == ()
        # None means "not a constant" — ⊥ must not fold away, it floors.
        assert edge.constant_value() is None

    def test_compose_with_empty_bindings_is_self(self):
        edge = IdentityEdge("x")
        assert edge.compose({}) is edge

    def test_constant_composes_to_itself(self):
        composed = ConstantEdge(4).compose({"x": IdentityEdge("y")})
        assert composed.constant_value() == 4
        assert composed.apply({}) == 4

    def test_identity_composes_by_substitution(self):
        # λenv. env[x] ∘ [x ↦ λenv. env[y]]  =  λenv. env[y]
        composed = IdentityEdge("x").compose({"x": IdentityEdge("y")})
        assert composed.apply({"y": 9}) == 9
        assert composed.support() == ("y",)

    def test_identity_compose_reads_through_unbound_keys(self):
        edge = IdentityEdge("x")
        assert edge.compose({"z": ConstantEdge(1)}) is edge

    def test_substituted_edge_merges_support(self):
        class Sum(EdgeFunction):
            def apply(self, env):
                return env["a"] + env["b"]

            def support(self):
                return ("a", "b")

        composed = Sum().compose({"a": IdentityEdge("p")})
        assert isinstance(composed, SubstitutedEdge)
        assert composed.support() == ("p", "b")
        assert composed.apply({"p": 2, "b": 3}) == 5

    def test_meet_edge_is_pointwise(self):
        lattice = ConstantLattice()
        met = ConstantEdge(3).meet_with(lattice, ConstantEdge(3))
        assert met.apply({}) == 3
        conflicting = ConstantEdge(3).meet_with(lattice, ConstantEdge(4))
        assert conflicting.apply({}) is BOTTOM

    def test_meet_edge_flattens_and_merges_support(self):
        lattice = ConstantLattice()
        inner = IdentityEdge("x").meet_with(lattice, IdentityEdge("y"))
        outer = inner.meet_with(lattice, IdentityEdge("z"))
        assert isinstance(outer, MeetEdge)
        assert len(outer.members) == 3
        assert outer.support() == ("x", "y", "z")
        assert outer.apply({"x": 1, "y": 1, "z": 1}) == 1
        assert outer.apply({"x": 1, "y": 2, "z": 1}) is BOTTOM

    def test_memo_token_defaults_to_edge_identity(self):
        edge = IdentityEdge("x")
        assert edge.memo_token() is edge


class TestConstantLattice:
    lattice = ConstantLattice()

    def test_top_and_bottom_singletons(self):
        assert self.lattice.top is TOP
        assert self.lattice.bottom is BOTTOM

    def test_meet_delegates_to_core(self):
        assert self.lattice.meet(3, 3) == 3
        assert self.lattice.meet(3, 4) is BOTTOM
        assert self.lattice.meet(TOP, 5) == 5

    def test_is_bottom(self):
        assert self.lattice.is_bottom(BOTTOM)
        assert not self.lattice.is_bottom(0)

    def test_meet_all(self):
        assert self.lattice.meet_all([TOP, 2, 2]) == 2
        assert self.lattice.meet_all([2, 3]) is BOTTOM
        assert self.lattice.meet_all([]) is TOP


class TestPowersetLattice:
    lattice = PowersetLattice()

    def test_top_is_empty_set(self):
        assert self.lattice.top == frozenset()

    def test_meet_is_union(self):
        a = frozenset({1})
        b = frozenset({2})
        assert self.lattice.meet(a, b) == frozenset({1, 2})

    def test_meet_preserves_identity_when_no_growth(self):
        a = frozenset({1, 2})
        assert self.lattice.meet(a, frozenset({1})) is a

    def test_never_bottom(self):
        # growth-only lattice: the floor short-circuit must stay inert.
        assert not self.lattice.is_bottom(frozenset())
        assert not self.lattice.is_bottom(frozenset({1, 2, 3}))


class TestFlowGraph:
    def diamond(self):
        return FlowGraph(
            nodes=["a", "b", "c", "d"],
            successors={"a": ("b", "c"), "b": ("d",), "c": ("d",)},
            roots=("a",),
        )

    def test_reverse_postorder_is_topological_on_dags(self):
        order = self.diamond().reverse_postorder()
        assert order[0] == "a"
        assert order[-1] == "d"
        assert set(order) == {"a", "b", "c", "d"}

    def test_rpo_index_is_total_and_cached(self):
        graph = self.diamond()
        index = graph.rpo_index()
        assert sorted(index.values()) == [0, 1, 2, 3]
        assert graph.rpo_index() is index

    def test_unreachable_nodes_appended(self):
        graph = FlowGraph(
            nodes=["a", "b", "orphan"],
            successors={"a": ("b",)},
            roots=("a",),
        )
        order = graph.reverse_postorder()
        assert order[-1] == "orphan"

    def test_multiple_roots(self):
        graph = FlowGraph(
            nodes=["a", "b", "x", "y"],
            successors={"a": ("b",), "x": ("y",)},
            roots=("a", "x"),
        )
        order = graph.reverse_postorder()
        assert order.index("a") < order.index("b")
        assert order.index("x") < order.index("y")

    def test_sccs_find_cycles(self):
        graph = FlowGraph(
            nodes=["a", "f", "g"],
            successors={"a": ("f",), "f": ("g",), "g": ("f",)},
            roots=("a",),
        )
        components = {tuple(scc) for scc in graph.sccs()}
        assert ("f", "g") in components
        assert ("a",) in components


class TestReverseFlowGraph:
    def test_mirrors_call_edges_and_caches(self):
        from repro.callgraph import build_call_graph
        from repro.frontend import parse_program
        from repro.ir import lower_program

        source = """
program main
  call s(1)
end
subroutine s(a)
  integer a
  write a
end
"""
        graph = build_call_graph(lower_program(parse_program(source)))
        reverse = reverse_flow_graph(graph)
        assert reverse.callees("s") == ("main",)
        assert reverse.callees("main") == ()
        assert set(reverse.roots) == set(graph.nodes)
        assert reverse_flow_graph(graph) is reverse
