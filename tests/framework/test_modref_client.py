"""The MOD/REF dataflow client against the reference implementation.

:func:`~repro.framework.clients.modref.cross_check_modref` must come
back empty (the two implementations agree) on the workload suite and on
every edge case the PR 3 reference tests pin: direct and mutual
recursion, one global MOD'd and REF'd through different call chains,
zero-formal procedures, value arguments breaking the binding, and
transitive effects through nested bindings. A seeded divergence must
surface as RL140 diagnostics, never a crash.
"""

import pytest

from repro.diagnostics.core import Severity
from repro.framework import solve_client
from repro.framework.clients import ModRefClient, cross_check_modref
from repro.framework.clients.modref import SUMMARY_KEYS, summary_sets
from repro.workloads import load_suite

from tests.framework.helpers import prepare

SUITE = load_suite(scale=0.25)

DIRECT_RECURSION = """
program main
  integer n
  n = 5
  call f(n)
end
subroutine f(a)
  integer a
  if (a > 0) then
    a = a - 1
    call f(a)
  endif
end
"""

MUTUAL_RECURSION = """
program main
  integer n
  n = 3
  call f(n)
end
subroutine f(a)
  integer a
  call g(a)
end
subroutine g(b)
  integer b
  if (b > 0) then
    call f(b)
  endif
  b = 0
end
"""

TWO_CHAINS = """
program main
  common /c/ g
  integer g
  call chainw
  call chainr
end
subroutine chainw
  call leafw
end
subroutine leafw
  common /c/ w
  integer w
  w = 7
end
subroutine chainr
  call leafr
end
subroutine leafr
  common /c/ r
  integer r
  write r
end
"""

ZERO_FORMALS = """
program main
  common /c/ g
  integer g
  call setup
  write g
end
subroutine setup
  common /c/ x
  integer x
  x = 42
end
"""

VALUE_ARG_BREAKS_CHAIN = """
program main
  integer n
  call outer(n)
end
subroutine outer(p)
  integer p
  call inner(p + 0)
end
subroutine inner(q)
  integer q
  q = 9
end
"""

TRANSITIVE_NEST = """
program main
  integer n
  call outer(n)
end
subroutine outer(p)
  integer p
  call inner(p)
end
subroutine inner(q)
  integer q
  q = 9
end
"""

RECURSIVE_TWO_FORMALS = """
program main
  integer n
  call rec(n, 3)
end
subroutine rec(a, d)
  integer a, d
  if (d > 0) then
    call rec(a, d - 1)
  else
    a = 0
  endif
end
"""

EDGE_CASES = {
    "direct_recursion": DIRECT_RECURSION,
    "mutual_recursion": MUTUAL_RECURSION,
    "two_chains": TWO_CHAINS,
    "zero_formals": ZERO_FORMALS,
    "value_arg_breaks_chain": VALUE_ARG_BREAKS_CHAIN,
    "transitive_nest": TRANSITIVE_NEST,
    "recursive_two_formals": RECURSIVE_TWO_FORMALS,
}


def check(source):
    lowered, graph, modref, _ = prepare(source)
    result = solve_client(lowered, graph, ModRefClient())
    findings = cross_check_modref(lowered, graph, result, info=modref)
    return lowered, modref, result, findings


@pytest.mark.parametrize("name", sorted(EDGE_CASES))
def test_edge_cases_agree_with_reference(name):
    _, _, _, findings = check(EDGE_CASES[name])
    assert findings == []


@pytest.mark.parametrize("name", sorted(SUITE))
def test_suite_agrees_with_reference(name):
    _, _, _, findings = check(SUITE[name].source)
    assert findings == []


def test_every_procedure_has_summaries():
    """Summaries exist even for procedures main never reaches — every
    procedure is a root of the reverse flow graph."""
    lowered, _, result, _ = check(TWO_CHAINS)
    for proc in lowered.procedures:
        env = result.val[proc]
        for kind in SUMMARY_KEYS:
            assert kind in env


def test_mutual_recursion_summary_contents():
    """Same facts the reference tests assert, read off the client: g
    writes its formal directly, f only through the f→g→f cycle."""
    lowered, modref, result, _ = check(MUTUAL_RECURSION)
    assert ("formal", "a") in result.val["f"]["mod"]
    assert ("formal", "b") in result.val["g"]["mod"]
    assert ("formal", "a") in result.val["f"]["ref"]
    assert summary_sets(modref, "f")["mod"] == result.val["f"]["mod"]


def test_value_argument_breaks_binding():
    _, _, result, _ = check(VALUE_ARG_BREAKS_CHAIN)
    assert ("formal", "q") in result.val["inner"]["mod"]
    assert ("formal", "p") not in result.val["outer"]["mod"]


def test_divergence_reports_rl140_not_crash():
    """Tamper with the solved summaries: the cross-check must return
    ERROR diagnostics describing both sides, not raise."""
    lowered, graph, _, _ = prepare(ZERO_FORMALS)
    result = solve_client(lowered, graph, ModRefClient())
    tampered = dict(result.val)
    tampered["setup"] = dict(tampered["setup"])
    tampered["setup"]["mod"] = frozenset([("formal", "phantom")])
    result.val = tampered

    findings = cross_check_modref(lowered, graph, result)
    assert findings, "tampered summaries must be reported"
    assert all(f.code == "RL140" for f in findings)
    assert all(f.severity is Severity.ERROR for f in findings)
    assert any(f.procedure == "setup" for f in findings)
    assert any("phantom" in f.message for f in findings)


def test_cross_check_solves_lazily():
    """Both the solved result and the reference info are optional."""
    lowered, graph, _, _ = prepare(DIRECT_RECURSION)
    assert cross_check_modref(lowered, graph) == []
