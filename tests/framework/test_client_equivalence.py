"""The framework constprop client is the specialized solver, re-expressed.

The tentpole extraction moved the scheduling loops verbatim, so
``solve()`` delegating through :mod:`repro.framework.driver` is
byte-identical by construction. This file pins the stronger claim: the
*generic* engine driving the *translated* edge functions
(:class:`~repro.framework.clients.constprop.ConstPropClient`) also
reproduces ``solve()`` exactly — same VALs (to the lattice-element
class), same reached set, same counter values — across the workload
suite and hypothesis-generated programs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import AnalysisConfig, JumpFunctionKind
from repro.core.solver import SolveResult, solve, solve_dense
from repro.framework import ClientSolveResult, solve_client
from repro.framework.clients import ConstPropClient
from repro.workloads import load_suite
from repro.workloads.generator import generate
from repro.workloads.profiles import WorkloadProfile

from tests.framework.helpers import prepare, tagged

SETTINGS = settings(max_examples=15, deadline=None)

profile_strategy = st.builds(
    WorkloadProfile,
    name=st.just("fweq"),
    seed=st.integers(1, 10_000),
    phases=st.integers(1, 3),
    pad_statements=st.integers(0, 3),
    literal_args=st.integers(0, 5),
    intra_args=st.integers(0, 3),
    passthrough_chains=st.integers(0, 3),
    chain_depth=st.integers(2, 4),
    global_constants=st.integers(0, 3),
    init_routine_globals=st.integers(0, 2),
    mod_sensitive=st.integers(0, 3),
    dead_branch_constants=st.integers(0, 2),
    local_constants=st.integers(0, 3),
    read_kills=st.integers(0, 2),
    conflicting_sites=st.integers(0, 2),
    skewed=st.booleans(),
    function_results=st.integers(0, 2),
    set_use=st.integers(0, 3),
    set_use_calls=st.integers(0, 3),
    leaf_call_fraction=st.floats(0.0, 1.0),
    extra_global_leaves=st.integers(0, 3),
    shallow_globals=st.booleans(),
)

kind_strategy = st.sampled_from(list(JumpFunctionKind))

SUITE = load_suite(scale=0.25)


def solve_both(source, config=None):
    lowered, graph, _, forward = prepare(source, config)
    specialized = solve(lowered, graph, forward)
    generic = solve_client(lowered, graph, ConstPropClient(forward))
    return lowered, graph, forward, specialized, generic


@pytest.mark.parametrize("name", sorted(SUITE))
def test_suite_vals_byte_identical(name):
    workload = SUITE[name]
    _, _, _, specialized, generic = solve_both(workload.source)
    assert generic.reached == specialized.reached
    assert tagged(generic.val) == tagged(specialized.val)


@pytest.mark.parametrize("name", sorted(SUITE))
def test_suite_counters_identical(name):
    """Satellite 6: not just the same keys — the generic engine performs
    the same evaluations, meets, deltas, memo traffic, and region passes
    as the specialized path, so ``--bench-check`` comparisons stay
    meaningful across the two."""
    workload = SUITE[name]
    _, _, _, specialized, generic = solve_both(workload.source)
    assert generic.counters() == specialized.counters()


@pytest.mark.parametrize("name", sorted(SUITE))
def test_suite_matches_dense(name):
    workload = SUITE[name]
    lowered, graph, forward, _, generic = solve_both(workload.source)
    dense = solve_dense(lowered, graph, forward)
    assert tagged(generic.val) == tagged(dense.val)


def test_counter_keys_match_solve_result():
    """The two result types expose the same counter vocabulary, so stats
    consumers (``--stats``, ``--bench-check``) need no per-type mapping."""
    specialized = SolveResult(val={})
    generic = ClientSolveResult(val={})
    assert generic.counters().keys() == specialized.counters().keys()


def test_legacy_schedule_agrees():
    """``region_scheduled=False`` drives the flat worklist loop; same
    fixpoint either way."""
    workload = SUITE["fpppp"]
    lowered, graph, _, forward = prepare(workload.source)
    client = ConstPropClient(forward)
    region = solve_client(lowered, graph, client)
    legacy = solve_client(lowered, graph, client, region_scheduled=False)
    assert tagged(region.val) == tagged(legacy.val)
    assert region.reached == legacy.reached


@given(profile=profile_strategy, kind=kind_strategy)
@SETTINGS
def test_generated_workloads_agree(profile, kind):
    workload = generate(profile)
    config = AnalysisConfig(jump_function=kind)
    _, _, _, specialized, generic = solve_both(workload.source, config)
    assert generic.reached == specialized.reached
    assert tagged(generic.val) == tagged(specialized.val)
    assert generic.counters() == specialized.counters()


@given(profile=profile_strategy)
@SETTINGS
def test_generated_workloads_match_dense(profile):
    workload = generate(profile)
    lowered, graph, forward, _, generic = solve_both(workload.source)
    dense = solve_dense(lowered, graph, forward)
    assert tagged(generic.val) == tagged(dense.val)
