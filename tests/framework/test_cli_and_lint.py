"""The user-facing surfaces of the framework: ``repro analyze
--analysis {constprop,copyprop,modref}`` and the copy-backed lint
passes RL130 (copy chains) and RL131 (dead cross-procedure copies)."""

import pytest

from repro.cli import main
from repro.diagnostics import run_passes
from repro.diagnostics.core import Severity

# An uninitialized COMMON slot threaded unchanged through two hops:
# copy facts for outer.p and inner.q (RL130 chain), each alongside the
# global itself (RL131 dead copies).
CHAIN = """
program main
  common /cfg/ n
  integer n
  call outer(n)
end
subroutine outer(p)
  common /cfg/ m
  integer p, m
  call inner(p)
  write p
end
subroutine inner(q)
  common /cfg/ k
  integer q, k
  write q
end
"""

CLEAN = """
program main
  integer n
  n = 4
  call s(n)
end
subroutine s(a)
  integer a
  write a
end
"""


@pytest.fixture
def chain_file(tmp_path):
    path = tmp_path / "chain.f"
    path.write_text(CHAIN)
    return str(path)


class TestAnalyzeCopyprop:
    def test_reports_copy_facts(self, chain_file, capsys):
        assert main(["analyze", chain_file, "--analysis", "copyprop"]) == 0
        out = capsys.readouterr().out
        assert "analysis: copyprop" in out
        assert "copy-of main::" in out
        assert "copy facts beyond constprop:" in out
        # the chain threads one root into at least p and q
        facts = int(out.rsplit("copy facts beyond constprop:", 1)[1].split()[0])
        assert facts >= 2

    def test_stats_use_shared_counter_keys(self, chain_file, capsys):
        assert (
            main(["analyze", chain_file, "--analysis", "copyprop", "--stats"])
            == 0
        )
        out = capsys.readouterr().out
        assert "copyprop solver counters:" in out
        assert "evaluations" in out and "region_passes" in out

    def test_constprop_output_unchanged_by_default(self, chain_file, capsys):
        assert main(["analyze", chain_file]) == 0
        out = capsys.readouterr().out
        assert "constants substituted" in out
        assert "analysis:" not in out


class TestAnalyzeModref:
    def test_prints_summaries_and_cross_checks(self, chain_file, capsys):
        assert main(["analyze", chain_file, "--analysis", "modref"]) == 0
        captured = capsys.readouterr()
        assert "MOD(main)" in captured.out
        assert "REF(inner)" in captured.out
        assert "summaries agree with callgraph.modref" in captured.err

    def test_example_program_smoke(self, capsys):
        assert (
            main(["analyze", "examples/pipeline.f", "--analysis", "modref"])
            == 0
        )
        assert "summaries agree" in capsys.readouterr().err


class TestCopyLintPasses:
    def test_copy_chain_fires_on_threaded_value(self):
        report = run_passes(CHAIN, select=["copy-chain"])
        findings = [d for d in report.diagnostics if d.code == "RL130"]
        assert findings
        assert all(d.severity is Severity.INFO for d in findings)
        assert any("copied unchanged" in d.message for d in findings)

    def test_dead_copy_fires_on_redundant_formal(self):
        report = run_passes(CHAIN, select=["dead-copy"])
        findings = [d for d in report.diagnostics if d.code == "RL131"]
        assert findings
        assert all(d.severity is Severity.WARNING for d in findings)
        assert any("redundant cross-procedure copy" in d.message for d in findings)

    def test_clean_program_is_quiet(self):
        report = run_passes(CLEAN, select=["copy-chain", "dead-copy"])
        assert report.diagnostics == []

    def test_passes_run_by_default(self):
        report = run_passes(CLEAN)
        assert "copy-chain" in report.passes_run
        assert "dead-copy" in report.passes_run

    def test_lint_cli_exit_code_stays_zero(self, chain_file):
        # INFO/WARNING findings must not fail the lint gate (errors only)
        assert main(["lint", chain_file]) == 0
