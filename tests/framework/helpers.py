"""Shared pipeline helpers for the framework test package."""

from repro.analysis.ssa import ensure_global_symbols
from repro.callgraph import build_call_graph, compute_modref
from repro.core.builder import build_forward_jump_functions
from repro.core.config import AnalysisConfig
from repro.core.returns import build_return_jump_functions
from repro.frontend import parse_program
from repro.ir import lower_program


def prepare(source, config=None):
    """Run the stage-0..2 pipeline, returning everything a client needs:
    ``(lowered, graph, modref, forward)``."""
    config = config or AnalysisConfig()
    program = parse_program(source)
    lowered = lower_program(program)
    ensure_global_symbols(lowered)
    graph = build_call_graph(lowered)
    modref = compute_modref(lowered, graph)
    returns = build_return_jump_functions(lowered, graph, modref, config)
    forward = build_forward_jump_functions(lowered, modref, returns, config)
    return lowered, graph, modref, forward


def tagged(val):
    """VAL with every value tagged by its class: ``1`` and ``True`` meet
    to the same ``==`` but are different lattice elements, so byte-level
    identity means class-level identity too."""
    return {
        proc: {key: (value.__class__, value) for key, value in env.items()}
        for proc, env in val.items()
    }
