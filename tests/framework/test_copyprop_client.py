"""Copy propagation subsumes constant propagation.

π projects the copy lattice onto the constant lattice (copies become ⊥).
The client is built so π commutes with every transfer, which makes
π(copyprop fixpoint) = constprop fixpoint *exactly* — asserted here on
the workload suite and hypothesis programs. Strictness (acceptance
criterion: copyprop provably subsumes constprop on at least one example
program) is pinned on a crafted chain program and on
``examples/pipeline.f``.
"""

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lattice import BOTTOM, TOP
from repro.core.solver import solve
from repro.framework import solve_client
from repro.framework.clients import ConstPropClient, CopyOf, CopyPropClient
from repro.framework.clients.copyprop import CopyLattice, copy_facts, project
from repro.workloads import load_suite
from repro.workloads.generator import generate

from tests.framework.helpers import prepare, tagged
from tests.framework.test_client_equivalence import profile_strategy

SETTINGS = settings(max_examples=15, deadline=None)

SUITE = load_suite(scale=0.25)

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

# An uninitialized global rides pass-throughs down a call chain:
# constprop floors every binding to ⊥ (no DATA constant), copyprop
# proves each one still equals main's global at entry.
CHAIN_SRC = """
program main
  common /io/ n
  integer n
  call outer(n)
end
subroutine outer(p)
  integer p
  call inner(p)
  write p
end
subroutine inner(q)
  integer q
  write q
end
"""


def projected(val):
    return {
        proc: {key: project(value) for key, value in env.items()}
        for proc, env in val.items()
    }


def solve_copy_and_const(source):
    lowered, graph, _, forward = prepare(source)
    const = solve_client(lowered, graph, ConstPropClient(forward))
    copy = solve_client(lowered, graph, CopyPropClient(forward))
    return const, copy


@pytest.mark.parametrize("name", sorted(SUITE))
def test_projection_equals_constprop_on_suite(name):
    const, copy = solve_copy_and_const(SUITE[name].source)
    assert copy.reached == const.reached
    assert tagged(projected(copy.val)) == tagged(const.val)


@given(profile=profile_strategy)
@SETTINGS
def test_projection_equals_constprop_on_generated(profile):
    workload = generate(profile)
    const, copy = solve_copy_and_const(workload.source)
    assert tagged(projected(copy.val)) == tagged(const.val)


def test_strict_refinement_on_chain_program():
    lowered, graph, _, forward = prepare(CHAIN_SRC)
    const = solve(lowered, graph, forward)
    copy = solve_client(lowered, graph, CopyPropClient(forward))

    # subsumption: projecting recovers constprop exactly
    assert tagged(projected(copy.val)) == tagged(const.val)

    # strictness: both formals are ⊥ to constprop but proven copies of
    # main's uninitialized global here, and every copy fact sits where
    # constprop gave up (⊥), never where it found a constant.
    facts = copy_facts(copy)
    chained = [
        value
        for env in facts.values()
        for value in env.values()
        if value.proc == "main"
    ]
    assert len(chained) >= 2
    for proc, env in facts.items():
        for key, value in env.items():
            assert isinstance(value, CopyOf)
            assert const.val[proc][key] is BOTTOM


def test_pipeline_example_has_copy_facts():
    """The shipped example the CLI smoke uses shows the refinement too."""
    source = (EXAMPLES / "pipeline.f").read_text()
    const, copy = solve_copy_and_const(source)
    extra = sum(len(env) for env in copy_facts(copy).values())
    assert extra >= 1
    assert tagged(projected(copy.val)) == tagged(const.val)


class TestCopyLattice:
    lattice = CopyLattice()
    a = CopyOf("main", "g")
    b = CopyOf("main", "h")

    def meet(self, x, y):
        return self.lattice.meet(x, y)

    def test_top_is_identity(self):
        assert self.meet(TOP, self.a) is self.a
        assert self.meet(self.a, TOP) is self.a
        assert self.meet(TOP, 7) == 7

    def test_bottom_absorbs(self):
        assert self.meet(BOTTOM, self.a) is BOTTOM
        assert self.meet(self.a, BOTTOM) is BOTTOM

    def test_equal_copies_agree(self):
        assert self.meet(self.a, CopyOf("main", "g")) == self.a

    def test_distinct_roots_conflict(self):
        assert self.meet(self.a, self.b) is BOTTOM

    def test_copy_against_constant_conflicts(self):
        # a constant is one particular value; a copy is whatever the
        # root held — nothing proves they coincide.
        assert self.meet(self.a, 4) is BOTTOM
        assert self.meet(4, self.a) is BOTTOM

    def test_constants_meet_as_before(self):
        assert self.meet(3, 3) == 3
        assert self.meet(3, 4) is BOTTOM

    def test_commutative_on_samples(self):
        samples = [TOP, BOTTOM, 0, 1, True, self.a, self.b]
        for x in samples:
            for y in samples:
                assert self.meet(x, y) == self.meet(y, x)

    def test_associative_on_samples(self):
        samples = [TOP, BOTTOM, 1, self.a, self.b]
        for x in samples:
            for y in samples:
                for z in samples:
                    assert self.meet(self.meet(x, y), z) == self.meet(
                        x, self.meet(y, z)
                    )

    def test_projection_is_meet_homomorphism(self):
        from repro.core.lattice import meet as constant_meet

        samples = [TOP, BOTTOM, 0, 1, True, self.a, self.b]
        for x in samples:
            for y in samples:
                assert project(self.meet(x, y)) == constant_meet(
                    project(x), project(y)
                )
