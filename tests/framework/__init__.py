"""Tests for the pluggable interprocedural dataflow framework."""
