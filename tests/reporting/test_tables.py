"""Tests for table regeneration and formatting."""

import pytest

from repro.reporting import (
    figure1_meet_table,
    format_cost_report,
    format_table1,
    format_table2,
    format_table3,
    run_cost_report,
    run_table1,
    run_table2,
    run_table3,
)
from repro.workloads import suite_names

SCALE = 0.25


@pytest.fixture(scope="module")
def table1():
    return run_table1(scale=SCALE)


@pytest.fixture(scope="module")
def table2():
    return run_table2(scale=SCALE)


@pytest.fixture(scope="module")
def table3():
    return run_table3(scale=SCALE)


class TestTable1:
    def test_all_programs_present(self, table1):
        assert [row.program for row in table1] == suite_names()

    def test_fields_sane(self, table1):
        for row in table1:
            assert row.lines > 0
            assert row.procedures > 1
            assert row.mean_lines > 0
            assert row.median_lines > 0

    def test_formatting(self, table1):
        text = format_table1(table1)
        assert "Table 1" in text
        for name in suite_names():
            assert name in text


class TestTable2:
    def test_all_programs_present(self, table2):
        assert [row.program for row in table2] == suite_names()

    def test_orderings(self, table2):
        for row in table2:
            assert row.literal <= row.intraprocedural <= row.pass_through
            assert row.pass_through == row.polynomial
            assert row.polynomial_no_rjf <= row.polynomial

    def test_formatting_has_columns(self, table2):
        text = format_table2(table2)
        assert "Poly" in text and "PassNR" in text


class TestTable3:
    def test_orderings(self, table3):
        for row in table3:
            assert row.polynomial_no_mod <= row.polynomial_with_mod
            assert row.complete >= row.polynomial_with_mod
            assert row.intraprocedural_only <= row.polynomial_with_mod

    def test_formatting(self, table3):
        text = format_table3(table3)
        assert "Complete" in text


class TestFigure1:
    def test_meet_table_contents(self):
        text = figure1_meet_table()
        assert "Figure 1" in text
        assert "_|_" in text
        assert "depth bound" in text

    def test_meet_table_row_count(self):
        lines = figure1_meet_table().splitlines()
        # title + header + 4 rows + blank + note
        assert len(lines) == 8


class TestCostReport:
    def test_cost_rows_cover_all_kinds(self):
        rows = run_cost_report(scale=0.15)
        assert {row.kind for row in rows} == {
            "literal",
            "intraprocedural",
            "pass_through",
            "polynomial",
        }
        text = format_cost_report(rows)
        assert "build(s)" in text

    def test_polynomial_support_is_small_in_practice(self):
        rows = run_cost_report(scale=0.15)
        poly = next(row for row in rows if row.kind == "polynomial")
        assert poly.mean_support <= 2.0  # §3.1.5: |support| approaches 1
