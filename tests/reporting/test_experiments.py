"""Tests for the one-shot experiment report generator."""

import pytest

from repro.reporting.experiments import run_experiments, write_report

pytestmark = pytest.mark.slow  # regenerates every table at scale 0.2


@pytest.fixture(scope="module")
def report():
    return run_experiments(scale=0.2)


class TestRunExperiments:
    def test_all_sections_populated(self, report):
        assert len(report.table1) == 12
        assert len(report.table2) == 12
        assert len(report.table3) == 12
        assert len(report.costs) == 4
        assert report.motivation["subscripts"] > 0
        assert len(report.cloning) == 12

    def test_markdown_renders(self, report):
        text = report.to_markdown()
        for heading in (
            "# Measured experiment report",
            "## Figure 1",
            "## Table 1",
            "## Table 2",
            "## Table 3",
            "## Jump function costs",
            "## Motivation clients",
            "## Procedure cloning",
        ):
            assert heading in text

    def test_cloning_rows_consistent(self, report):
        for row in report.cloning:
            assert row["after"] >= row["before"]
            assert row["growth"] >= 1.0

    def test_write_report(self, report, tmp_path):
        target = tmp_path / "report.md"
        written = write_report(str(target), scale=0.2)
        assert target.exists()
        content = target.read_text()
        assert "## Table 2" in content
        assert len(written.table2) == 12
