"""Tests for the Figure 1 lattice, including property-based lattice laws."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.lattice import (
    BOTTOM,
    TOP,
    constant_from_python,
    height_remaining,
    is_constant,
    meet,
    meet_all,
)

lattice_values = st.one_of(
    st.just(TOP),
    st.just(BOTTOM),
    st.integers(min_value=-1000, max_value=1000),
    st.booleans(),
)


class TestMeetTable:
    """The exact rules on the left of Figure 1."""

    def test_top_is_identity(self):
        assert meet(TOP, 5) == 5
        assert meet(5, TOP) == 5
        assert meet(TOP, BOTTOM) is BOTTOM
        assert meet(TOP, TOP) is TOP

    def test_bottom_absorbs(self):
        assert meet(BOTTOM, 5) is BOTTOM
        assert meet(5, BOTTOM) is BOTTOM
        assert meet(BOTTOM, BOTTOM) is BOTTOM

    def test_equal_constants_preserved(self):
        assert meet(7, 7) == 7
        assert meet(True, True) is True

    def test_unequal_constants_fall(self):
        assert meet(7, 8) is BOTTOM

    def test_bool_and_int_are_distinct_constants(self):
        # 1 == True in Python; the lattice must not confuse them.
        assert meet(1, True) is BOTTOM
        assert meet(0, False) is BOTTOM


class TestLatticeLaws:
    @given(lattice_values, lattice_values)
    def test_commutative(self, a, b):
        assert meet(a, b) == meet(b, a)

    @given(lattice_values, lattice_values, lattice_values)
    def test_associative(self, a, b, c):
        assert meet(meet(a, b), c) == meet(a, meet(b, c))

    @given(lattice_values)
    def test_idempotent(self, a):
        assert meet(a, a) == a

    @given(lattice_values)
    def test_top_identity(self, a):
        assert meet(TOP, a) == a

    @given(lattice_values)
    def test_bottom_absorbing(self, a):
        assert meet(BOTTOM, a) is BOTTOM

    @given(lattice_values, lattice_values)
    def test_meet_lowers(self, a, b):
        # height(meet) <= min(height(a), height(b))
        result = meet(a, b)
        assert height_remaining(result) <= height_remaining(a)
        assert height_remaining(result) <= height_remaining(b)

    @given(st.lists(lattice_values, max_size=6))
    def test_meet_all_matches_fold(self, values):
        folded = TOP
        for value in values:
            folded = meet(folded, value)
        assert meet_all(values) == folded


class TestMeetAllShortCircuit:
    """meet_all stops at the first ⊥ *input* without spending a meet on
    it — wide fan-in reductions (SCCP phi joins, sweep merges) should
    not pay for values that cannot change the answer."""

    def counting(self, monkeypatch):
        import repro.core.lattice as lattice

        calls = []
        real = lattice.meet

        def counted(a, b):
            calls.append((a, b))
            return real(a, b)

        monkeypatch.setattr(lattice, "meet", counted)
        return calls

    def test_leading_bottom_spends_no_meets(self, monkeypatch):
        calls = self.counting(monkeypatch)
        assert meet_all([BOTTOM, 1, 2, 3]) is BOTTOM
        assert calls == []

    def test_fold_stops_at_first_bottom_input(self, monkeypatch):
        calls = self.counting(monkeypatch)
        assert meet_all([7, 7, BOTTOM, 8, 9]) is BOTTOM
        # only the two 7s were folded; nothing after the ⊥ was touched
        assert len(calls) == 2

    def test_conflict_still_short_circuits(self, monkeypatch):
        calls = self.counting(monkeypatch)
        # 1 ⊓ 2 = ⊥ by conflict: the fold stops without meeting 3
        assert meet_all([1, 2, 3]) is BOTTOM
        assert len(calls) == 2


class TestBoundedDepth:
    """The lattice depth bound of §2: a value lowers at most twice."""

    def test_heights(self):
        assert height_remaining(TOP) == 2
        assert height_remaining(42) == 1
        assert height_remaining(BOTTOM) == 0

    @given(st.lists(lattice_values, min_size=1, max_size=20))
    def test_chain_of_meets_lowers_at_most_twice(self, values):
        current = TOP
        drops = 0
        for value in values:
            lowered = meet(current, value)
            if lowered != current or type(lowered) is not type(current):
                drops += 1
                current = lowered
        assert drops <= 2


class TestHelpers:
    def test_is_constant(self):
        assert is_constant(5)
        assert is_constant(0)
        assert is_constant(False)
        assert not is_constant(TOP)
        assert not is_constant(BOTTOM)

    def test_constant_from_python(self):
        assert constant_from_python(3) == 3
        assert constant_from_python(True) is True
        assert constant_from_python(2.5) is BOTTOM
        assert constant_from_python("x") is BOTTOM

    def test_singletons_survive_reconstruction(self):
        from repro.core.lattice import _Bottom, _Top

        assert _Top() is TOP
        assert _Bottom() is BOTTOM
