"""SCC condensation edge cases for the region scheduler.

Each shape the scheduler must get right — self-recursion, mutual
recursion spanning 3+ procedures, a procedure unreachable from the main
program, one giant SCC — is checked three ways: the region order is a
caller-first topological order of the condensation, the region count
matches the component structure, and the region-scheduled solve is
result-equivalent to the dense reference solver.
"""

from repro import analyze
from repro.core.regions import region_schedule
from repro.core.solver import solve, solve_dense


def run(source):
    result = analyze(source)
    return result, region_schedule(result.call_graph)


def assert_dense_equivalent(result):
    dense = solve_dense(result.lowered, result.call_graph, result.forward)
    assert result.solved.reached == dense.reached
    assert result.solved.val == dense.val
    assert result.solved.all_constants() == dense.all_constants()


def assert_topological(schedule, graph):
    """Every reachable cross-region call edge goes caller -> later region."""
    reached = graph.reachable_from_main()
    for caller in graph.nodes:
        if caller not in reached:
            continue
        for callee in graph.callees(caller):
            ci, ei = schedule.region_of[caller], schedule.region_of[callee]
            assert ci <= ei, (caller, callee)


class TestSelfRecursion:
    SOURCE = """
program m
  call f(3)
end
subroutine f(n)
  integer n
  if (n .gt. 0) then
    call f(n - 1)
  endif
end
"""

    def test_region_structure(self):
        result, schedule = run(self.SOURCE)
        assert schedule.order() == [("m",), ("f",)]
        assert not schedule.region("m").recursive
        assert schedule.region("f").recursive
        assert result.solved.regions == 2
        assert_topological(schedule, result.call_graph)

    def test_dense_equivalence(self):
        result, _ = run(self.SOURCE)
        assert_dense_equivalent(result)


class TestMutualRecursionThreeWide:
    SOURCE = """
program m
  call a(9)
end
subroutine a(n)
  integer n
  if (n .gt. 0) then
    call b(n - 1)
  endif
end
subroutine b(n)
  integer n
  call c(n)
end
subroutine c(n)
  integer n
  if (n .gt. 1) then
    call a(n - 2)
  endif
end
"""

    def test_region_structure(self):
        result, schedule = run(self.SOURCE)
        order = [tuple(sorted(members)) for members in schedule.order()]
        assert order == [("m",), ("a", "b", "c")]
        assert schedule.region("a") is schedule.region("c")
        assert schedule.region("b").recursive
        assert result.solved.regions == 2
        # the cycle needs at least one local re-sweep to stabilize
        assert result.solved.passes >= 2
        assert_topological(schedule, result.call_graph)

    def test_dense_equivalence(self):
        result, _ = run(self.SOURCE)
        assert_dense_equivalent(result)


class TestUnreachableProcedure:
    SOURCE = """
program m
  call f(5)
end
subroutine f(n)
  integer n
  write n
end
subroutine orphan(k)
  integer k
  call f(k)
end
"""

    def test_region_structure(self):
        result, schedule = run(self.SOURCE)
        assert len(schedule.regions) == 3
        # the unreachable region sorts after every reachable one, and the
        # solver never processes it (no seed ever activates it)
        assert schedule.regions[-1].members == ("orphan",)
        assert result.solved.regions == 2
        assert "orphan" not in result.solved.reached

    def test_dense_equivalence(self):
        result, _ = run(self.SOURCE)
        assert_dense_equivalent(result)
        # the orphan's edge into f must not pollute f's environment:
        # only main's constant argument reaches it
        assert result.solved.val["f"]["n"] == 5


class TestGiantSCC:
    @staticmethod
    def source(width=6):
        procs = [f"p{i}" for i in range(width)]
        lines = ["program m", "  call p0(40)", "end"]
        for i, name in enumerate(procs):
            succ = procs[(i + 1) % width]
            lines += [
                f"subroutine {name}(n)",
                "  integer n",
                "  if (n .gt. 0) then",
                f"    call {succ}(n - 1)",
                "  endif",
                "end",
            ]
        return "\n".join(lines) + "\n"

    def test_region_structure(self):
        result, schedule = run(self.source())
        order = [tuple(sorted(members)) for members in schedule.order()]
        assert order == [
            ("m",),
            ("p0", "p1", "p2", "p3", "p4", "p5"),
        ]
        assert schedule.regions[1].recursive
        assert result.solved.regions == 2
        assert_topological(schedule, result.call_graph)

    def test_dense_equivalence(self):
        result, _ = run(self.source())
        assert_dense_equivalent(result)


class TestPassReduction:
    """The region schedule strictly beats the legacy global worklist on a
    chain of two SCCs with an internal echo: upstream {a, z} decrements
    toward ⊥ while downstream {p, q} echoes p's first formal into its
    second (``call p(n, n)``). In the legacy schedule q's requeue of p
    pops backward mid-run and upstream's late ⊥ forces yet another
    sweep — three ascending runs, with p evaluated three times. The
    region schedule converges {a, z} first, seeds {p, q} exactly once
    with the final environment, and finishes in two local sweeps."""

    SOURCE = """
program m
  call a(50)
end
subroutine a(n)
  integer n
  call z(n)
end
subroutine z(n)
  integer n
  call a(n - 1)
  call p(n, 7)
end
subroutine p(n, k)
  integer n, k
  call q(n)
end
subroutine q(n)
  integer n
  call p(n, n)
end
"""

    def test_region_passes_strictly_lower(self):
        result = analyze(self.SOURCE)
        legacy = solve(
            result.lowered,
            result.call_graph,
            result.forward,
            region_scheduled=False,
        )
        assert result.solved.reached == legacy.reached
        assert result.solved.val == legacy.val
        assert result.solved.passes < legacy.passes
        assert result.solved.evaluations < legacy.evaluations

    def test_dense_equivalence(self):
        result = analyze(self.SOURCE)
        assert_dense_equivalent(result)
