"""Tests for value expressions, including property-based evaluation laws."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.exprs import (
    BOTTOM_EXPR,
    INTERN_TABLE,
    ConstExpr,
    EntryExpr,
    OpExpr,
    clear_intern_table,
    compile_expr,
    const_expr,
    constant_only_value,
    entry_expr,
    make_binary,
    make_intrinsic,
    make_unary,
    substitute,
)
from repro.core.lattice import BOTTOM, TOP, is_constant


class TestConstruction:
    def test_const_folding(self):
        assert make_binary("+", const_expr(2), const_expr(3)) == ConstExpr(5)
        assert make_binary("*", const_expr(4), const_expr(5)) == ConstExpr(20)

    def test_fortran_division_folds(self):
        assert make_binary("/", const_expr(-7), const_expr(2)) == ConstExpr(-3)

    def test_division_by_zero_becomes_bottom(self):
        assert make_binary("/", const_expr(1), const_expr(0)).is_bottom

    def test_bottom_propagates(self):
        assert make_binary("+", BOTTOM_EXPR, const_expr(1)).is_bottom
        assert make_unary("-", BOTTOM_EXPR).is_bottom
        assert make_intrinsic("mod", [BOTTOM_EXPR, const_expr(2)]).is_bottom

    def test_multiply_by_zero_beats_bottom(self):
        assert make_binary("*", const_expr(0), BOTTOM_EXPR) == ConstExpr(0)
        assert make_binary("*", BOTTOM_EXPR, const_expr(0)) == ConstExpr(0)

    def test_identity_add_zero(self):
        e = entry_expr("k")
        assert make_binary("+", e, const_expr(0)) == e
        assert make_binary("+", const_expr(0), e) == e

    def test_identity_mul_one(self):
        e = entry_expr("k")
        assert make_binary("*", e, const_expr(1)) == e
        assert make_binary("*", const_expr(1), e) == e

    def test_x_minus_x_is_zero(self):
        e = entry_expr("k")
        assert make_binary("-", e, e) == ConstExpr(0)

    def test_self_comparison_folds(self):
        e = entry_expr("k")
        assert make_binary("==", e, e) == ConstExpr(True)
        assert make_binary("<", e, e) == ConstExpr(False)

    def test_bool_not_confused_with_int_in_identities(self):
        # ConstExpr(False) must not be treated as the integer 0
        e = entry_expr("k")
        result = make_binary("+", e, ConstExpr(False))
        assert result != e  # no 'x + 0' identity for booleans

    def test_double_negation(self):
        e = entry_expr("k")
        assert make_unary("-", make_unary("-", e)) == e

    def test_unary_plus_transparent(self):
        e = entry_expr("k")
        assert make_unary("+", e) == e

    def test_intrinsic_folding(self):
        assert make_intrinsic("mod", [const_expr(7), const_expr(3)]) == ConstExpr(1)
        assert make_intrinsic("max", [const_expr(2), const_expr(9)]) == ConstExpr(9)

    def test_oversize_expression_collapses(self):
        expr = entry_expr("k")
        for i in range(300):
            expr = make_binary("+", expr, entry_expr(f"v{i}"))
        assert expr.is_bottom


class TestSupport:
    def test_const_support_empty(self):
        assert const_expr(5).support() == frozenset()

    def test_entry_support(self):
        assert entry_expr("k").support() == {"k"}

    def test_op_support_union(self):
        expr = make_binary("+", entry_expr("a"), entry_expr("b"))
        assert expr.support() == {"a", "b"}

    def test_support_is_exact_after_simplification(self):
        # (a - a) + b has support {b}, not {a, b}
        expr = make_binary(
            "+", make_binary("-", entry_expr("a"), entry_expr("a")), entry_expr("b")
        )
        assert expr.support() == {"b"}


class TestEvaluation:
    def test_entry_reads_env(self):
        assert entry_expr("k").evaluate({"k": 9}) == 9

    def test_missing_key_is_bottom(self):
        assert entry_expr("k").evaluate({}) is BOTTOM

    def test_top_propagates_optimistically(self):
        expr = make_binary("+", entry_expr("k"), const_expr(1))
        assert expr.evaluate({"k": TOP}) is TOP

    def test_bottom_beats_top(self):
        expr = make_binary("+", entry_expr("a"), entry_expr("b"))
        assert expr.evaluate({"a": TOP, "b": BOTTOM}) is BOTTOM

    def test_polynomial_evaluation(self):
        # 2*k + 1 at k = 20
        expr = make_binary(
            "+", make_binary("*", const_expr(2), entry_expr("k")), const_expr(1)
        )
        assert expr.evaluate({"k": 20}) == 41

    def test_division_by_zero_at_eval_time(self):
        expr = make_binary("/", const_expr(10), entry_expr("k"))
        assert expr.evaluate({"k": 0}) is BOTTOM

    def test_constant_only_value_is_gcp(self):
        assert constant_only_value(const_expr(5)) == 5
        assert constant_only_value(entry_expr("k")) is BOTTOM
        expr = make_binary("+", entry_expr("k"), const_expr(1))
        assert constant_only_value(expr) is BOTTOM

    @given(st.integers(-100, 100), st.integers(-100, 100))
    def test_evaluate_agrees_with_python_on_add(self, a, b):
        expr = make_binary("+", entry_expr("x"), entry_expr("y"))
        assert expr.evaluate({"x": a, "y": b}) == a + b

    @given(st.integers(-100, 100))
    def test_simplified_equals_unsimplified(self, k):
        # (x * 1) + 0 must evaluate exactly like x
        expr = make_binary(
            "+", make_binary("*", entry_expr("x"), const_expr(1)), const_expr(0)
        )
        assert expr.evaluate({"x": k}) == k


class TestZeroAbsorptionAtEvalTime:
    """``0 * x`` is 0 for ANY lattice x — including ⊥ and ⊤ — when the
    zero arrives at *evaluate* time rather than build time. The build-time
    rule (``test_multiply_by_zero_beats_bottom``) alone missed the case
    where the zero flows in through the environment."""

    def setup_method(self):
        self.product = make_binary("*", entry_expr("a"), entry_expr("b"))

    def test_zero_times_bottom(self):
        assert self.product.evaluate({"a": 0, "b": BOTTOM}) == 0
        assert self.product.evaluate({"a": BOTTOM, "b": 0}) == 0

    def test_zero_times_top(self):
        assert self.product.evaluate({"a": 0, "b": TOP}) == 0
        assert self.product.evaluate({"a": TOP, "b": 0}) == 0

    def test_zero_times_missing_key(self):
        # an absent binding evaluates as ⊥ — still absorbed
        half = make_binary("*", entry_expr("a"), entry_expr("missing"))
        assert half.evaluate({"a": 0}) == 0

    def test_logical_false_does_not_absorb(self):
        # LOGICAL .false. == 0 in Python but is NOT the integer zero:
        # no absorption, so ⊥ wins as usual
        assert self.product.evaluate({"a": False, "b": BOTTOM}) is BOTTOM

    def test_ordinary_products_unchanged(self):
        assert self.product.evaluate({"a": 6, "b": 7}) == 42
        assert self.product.evaluate({"a": TOP, "b": 7}) is TOP
        assert self.product.evaluate({"a": BOTTOM, "b": 7}) is BOTTOM


class TestCompiledKernels:
    """compile_expr builds closure kernels that must agree with the
    ``evaluate`` tree walk on every lattice input."""

    ENVS = [
        {"x": 3, "y": 4},
        {"x": 0, "y": BOTTOM},
        {"x": BOTTOM, "y": 0},
        {"x": TOP, "y": 5},
        {"x": BOTTOM, "y": TOP},
        {"x": False, "y": BOTTOM},
        {},
    ]

    def assert_kernel_agrees(self, expr):
        kernel = compile_expr(expr)
        for env in self.ENVS:
            assert kernel(env) == expr.evaluate(env) or (
                kernel(env) is expr.evaluate(env)
            ), env

    def test_polynomial_kernel(self):
        expr = make_binary(
            "+",
            make_binary("*", const_expr(2), entry_expr("x")),
            entry_expr("y"),
        )
        self.assert_kernel_agrees(expr)

    def test_product_kernel_zero_absorption(self):
        self.assert_kernel_agrees(
            make_binary("*", entry_expr("x"), entry_expr("y"))
        )

    def test_division_kernel(self):
        self.assert_kernel_agrees(
            make_binary("/", const_expr(10), entry_expr("x"))
        )

    def test_unary_and_intrinsic_kernels(self):
        self.assert_kernel_agrees(make_unary("-", entry_expr("x")))
        self.assert_kernel_agrees(
            make_intrinsic("max", [entry_expr("x"), entry_expr("y")])
        )

    def test_bottom_kernel(self):
        assert compile_expr(BOTTOM_EXPR)({}) is BOTTOM

    def test_kernel_cache_hit_counted(self):
        expr = make_binary("+", entry_expr("x"), const_expr(777001))
        compiles = INTERN_TABLE.kernel_compiles
        first = compile_expr(expr)
        assert INTERN_TABLE.kernel_compiles > compiles
        hits = INTERN_TABLE.kernel_hits
        assert compile_expr(expr) is first
        assert INTERN_TABLE.kernel_hits > hits

    def test_clear_bumps_generation_and_drops_kernels(self):
        # id-keyed caches corrupt silently if a cleared table lets a new
        # expression recycle an old id; the generation counter in the
        # cache key makes every pre-clear entry unreachable
        expr = make_binary("+", entry_expr("x"), const_expr(777002))
        compile_expr(expr)
        generation = INTERN_TABLE.generation
        clear_intern_table()
        assert INTERN_TABLE.generation == generation + 1
        assert INTERN_TABLE.kernel_for(expr) is None
        kernel = compile_expr(expr)  # recompiles under the new generation
        assert kernel({"x": 1}) == 777003


class TestSubstitution:
    def test_substitute_entry(self):
        expr = make_binary("+", entry_expr("a"), const_expr(1))
        composed = substitute(expr, {"a": const_expr(4)})
        assert composed == ConstExpr(5)

    def test_substitute_with_expression(self):
        expr = make_binary("*", entry_expr("a"), const_expr(2))
        composed = substitute(expr, {"a": entry_expr("outer")})
        assert composed.support() == {"outer"}

    def test_missing_binding_is_bottom(self):
        expr = make_binary("+", entry_expr("a"), entry_expr("b"))
        assert substitute(expr, {"a": const_expr(1)}).is_bottom

    def test_substitute_resimplifies(self):
        expr = make_binary("-", entry_expr("a"), entry_expr("b"))
        composed = substitute(
            expr, {"a": entry_expr("z"), "b": entry_expr("z")}
        )
        assert composed == ConstExpr(0)


class TestDisplay:
    def test_strings(self):
        assert str(const_expr(5)) == "5"
        assert str(entry_expr("k")) == "entry(k)"
        assert str(BOTTOM_EXPR) == "⊥"
        expr = make_binary("+", entry_expr("a"), const_expr(1))
        assert "entry(a)" in str(expr)
        assert "+" in str(expr)

    def test_sizes(self):
        assert const_expr(1).size == 1
        expr = make_binary("+", entry_expr("a"), const_expr(1))
        assert expr.size == 3
