"""Unit tests for the worklist solver (stage 3)."""

import pytest

from repro import analyze
from repro.core.lattice import BOTTOM, TOP
from repro.core.solver import initial_val
from repro.frontend import parse_program
from repro.frontend.symbols import GlobalId
from repro.ir import lower_program
from repro.analysis.ssa import ensure_global_symbols


class TestInitialVal:
    def lowered(self, source):
        lowered = lower_program(parse_program(source))
        ensure_global_symbols(lowered)
        return lowered

    def test_formals_start_top(self):
        lowered = self.lowered(
            "program m\nx=1\nend\nsubroutine s(a, b)\ninteger a, b\na=b\nend\n"
        )
        val = initial_val(lowered)
        assert val["s"]["a"] is TOP
        assert val["s"]["b"] is TOP

    def test_real_formals_excluded(self):
        lowered = self.lowered(
            "program m\nx=1\nend\nsubroutine s(a, r)\ninteger a\nreal r\na=1\nend\n"
        )
        val = initial_val(lowered)
        assert "a" in val["s"]
        assert "r" not in val["s"]

    def test_array_formals_excluded(self):
        lowered = self.lowered(
            "program m\ninteger v(3)\ncall s(v)\nend\n"
            "subroutine s(w)\ninteger w(3)\nw(1)=1\nend\n"
        )
        val = initial_val(lowered)
        assert val["s"] == {}

    def test_main_globals_data_initialized(self):
        lowered = self.lowered(
            "program m\ncommon /c/ g, h\ninteger g, h\ndata g /9/\nh = g\nend\n"
        )
        val = initial_val(lowered)
        assert val["m"][GlobalId("c", 0)] == 9
        assert val["m"][GlobalId("c", 1)] is BOTTOM  # uninitialized

    def test_every_proc_sees_every_scalar_global(self):
        lowered = self.lowered(
            "program m\ncommon /c/ g\ninteger g\ng=1\ncall s\nend\n"
            "subroutine s\nx = 1.0\nend\n"
        )
        val = initial_val(lowered)
        assert GlobalId("c", 0) in val["s"]


class TestPropagation:
    def test_two_edges_meet(self):
        source = """
program m
  call s(4)
  call t
end
subroutine t
  call s(4)
end
subroutine s(a)
  integer a
  write a
end
"""
        result = analyze(source)
        assert result.solved.val["s"]["a"] == 4

    def test_diverging_edges_meet_to_bottom(self):
        source = """
program m
  call s(4)
  call t
end
subroutine t
  call s(5)
end
subroutine s(a)
  integer a
  write a
end
"""
        result = analyze(source)
        assert result.solved.val["s"]["a"] is BOTTOM

    def test_long_chain_propagates(self):
        chain = ["program m", "  call p1(7)", "end"]
        for i in range(1, 10):
            chain.extend(
                [
                    f"subroutine p{i}(x)",
                    "  integer x",
                    f"  call p{i + 1}(x)",
                    "end",
                ]
            )
        chain.extend(["subroutine p10(x)", "  integer x", "  write x", "end"])
        result = analyze("\n".join(chain) + "\n")
        assert result.solved.val["p10"]["x"] == 7

    def test_stats_counted(self):
        result = analyze("program m\ncall s(1)\nend\nsubroutine s(a)\ninteger a\nwrite a\nend\n")
        assert result.solved.pops >= 2
        assert result.solved.passes >= 1
        assert result.solved.passes <= result.solved.pops
        # the literal jump function folds at index build (§3.1.5 charges
        # construction, not per-pass evaluation): it is transferred by
        # meet alone and never counted as a solve-time evaluation
        assert result.solved.evaluations == 0
        assert result.solved.meets >= 1
        assert result.solved.meets >= result.solved.evaluations

    def test_pass_through_counts_evaluation(self):
        # a pass-through jump function genuinely reads the caller's
        # environment at solve time, so it *is* an evaluation
        source = """
program m
  call t(1)
end
subroutine t(x)
  integer x
  call s(x)
end
subroutine s(a)
  integer a
  write a
end
"""
        result = analyze(source)
        assert result.solved.evaluations >= 1
        assert result.solved.val["s"]["a"] == 1

    def test_self_loop_terminates(self):
        source = """
program m
  call s(3)
end
subroutine s(a)
  integer a
  if (a > 0) then
    call s(a)
  endif
end
"""
        result = analyze(source)
        # a = 3 on every path (passed through unchanged)
        assert result.solved.val["s"]["a"] == 3

    def test_bottom_never_resurrects(self):
        source = """
program m
  call s(1)
  call s(2)
  call s(1)
end
subroutine s(a)
  integer a
  write a
end
"""
        result = analyze(source)
        assert result.solved.val["s"]["a"] is BOTTOM


class TestScheduling:
    """Reverse-postorder priority scheduling and pass/pop accounting."""

    DIAMOND = """
program m
  call b(1)
  call c(1)
end
subroutine b(x)
  integer x
  call d(x)
end
subroutine c(y)
  integer y
  call d(y)
end
subroutine d(z)
  integer z
  write z
end
"""

    def test_diamond_passes_and_pops(self):
        # Priority order visits m, then b and c (both before d), then d:
        # one monotone sweep, four pops. The old LIFO worklist counted
        # every pop as a "pass", overstating the §3.1.5 cost fourfold.
        result = analyze(self.DIAMOND, cache=None)
        assert result.solved.pops == 4
        assert result.solved.passes == 1
        assert result.solved.val["d"]["z"] == 1

    def test_diamond_diverging_still_one_pass(self):
        source = self.DIAMOND.replace("call c(1)", "call c(2)")
        result = analyze(source, cache=None)
        assert result.solved.pops == 4
        assert result.solved.passes == 1
        from repro.core.lattice import BOTTOM

        assert result.solved.val["d"]["z"] is BOTTOM

    def test_recursive_clique_needs_extra_passes(self):
        source = """
program m
  call even(4)
end
subroutine even(n)
  integer n
  if (n > 0) call odd(n - 1)
end
subroutine odd(n)
  integer n
  if (n > 0) call even(n - 1)
end
"""
        result = analyze(source, cache=None)
        # the cycle forces at least one wrap of the priority order
        assert result.solved.passes >= 2
        assert result.solved.pops >= result.solved.passes

    def test_counters_mapping(self):
        result = analyze(self.DIAMOND, cache=None)
        counters = result.solved.counters()
        assert counters["pops"] == result.solved.pops
        assert counters["passes"] == result.solved.passes
        assert set(counters) == {
            "passes",
            "pops",
            "evaluations",
            "meets",
            "deltas",
            "skipped",
            "memo_hits",
            "memo_misses",
            "bottom_skips",
            "regions",
            "region_passes",
            "regions_warm",
            "kernel_compiles",
            "kernel_hits",
            "waves",
            "regions_parallel",
            "slab_slots",
            "slab_bytes",
            "batch_drains",
            "slab_build_seconds",
            "slab_load_seconds",
            "slab_patched_procs",
            "slab_patched_slots",
        }
        # the diamond is acyclic: four singleton regions, one local
        # sweep each, nothing adopted from a store
        assert counters["regions"] == 4
        assert counters["region_passes"] == 4
        assert counters["regions_warm"] == 0


class TestBaselineVal:
    """bottom_val: the Table 3 intraprocedural baseline's entry state."""

    def test_bottom_everywhere_even_with_data(self):
        from repro.core.solver import bottom_val
        from repro.analysis.ssa import ensure_global_symbols
        from repro.ir import lower_program

        lowered = lower_program(parse_program(
            "program m\ncommon /c/ g\ninteger g\ndata g /9/\nwrite g\nend\n"
        ))
        ensure_global_symbols(lowered)
        val = bottom_val(lowered)
        assert all(
            value is BOTTOM for env in val.values() for value in env.values()
        )


class TestConstantsAccessors:
    def test_constants_excludes_top_and_bottom(self):
        source = """
program m
  call s(1)
  read n
  call s2(n)
end
subroutine s(a)
  integer a
  write a
end
subroutine s2(b)
  integer b
  write b
end
subroutine orphan(c)
  integer c
  write c
end
"""
        result = analyze(source)
        assert result.solved.constants("s") != {}
        assert result.solved.constants("s2") == {}
        assert result.solved.constants("orphan") == {}

    def test_all_constants_shape(self):
        result = analyze(
            "program m\ncall s(1)\nend\nsubroutine s(a)\ninteger a\nwrite a\nend\n"
        )
        everything = result.solved.all_constants()
        assert set(everything) == {"m", "s"}
