"""Tests for the four forward jump function projections (§3.1)."""

import pytest

from repro.core.config import JumpFunctionKind
from repro.core.exprs import (
    BOTTOM_EXPR,
    ConstExpr,
    EntryExpr,
    const_expr,
    entry_expr,
    make_binary,
)
from repro.core.jump_functions import (
    CallSiteFunctions,
    JumpFunction,
    constants_subset_holds,
    evaluate_all,
    project,
)
from repro.core.lattice import BOTTOM, is_constant
from repro.frontend.symbols import GlobalId

LITERAL_5 = const_expr(5)
PASSTHROUGH = entry_expr("k")
POLY = make_binary("+", make_binary("*", const_expr(2), entry_expr("k")), const_expr(1))

ALL_KINDS = list(JumpFunctionKind)


class TestLiteralProjection:
    def test_accepts_literal_actual(self):
        jf = project(LITERAL_5, JumpFunctionKind.LITERAL, is_literal_actual=True)
        assert jf.evaluate({}) == 5

    def test_rejects_computed_constant(self):
        # gcp finds it, but it is not a literal token at the call site
        jf = project(LITERAL_5, JumpFunctionKind.LITERAL, is_literal_actual=False)
        assert jf.is_bottom

    def test_rejects_passthrough(self):
        jf = project(PASSTHROUGH, JumpFunctionKind.LITERAL, is_literal_actual=False)
        assert jf.is_bottom

    def test_rejects_globals(self):
        # §3.1.1: literal misses constants passed implicitly via globals
        jf = project(LITERAL_5, JumpFunctionKind.LITERAL,
                     is_literal_actual=True, is_global=True)
        assert jf.is_bottom


class TestIntraproceduralProjection:
    def test_accepts_computed_constant(self):
        jf = project(LITERAL_5, JumpFunctionKind.INTRAPROCEDURAL)
        assert jf.evaluate({}) == 5

    def test_rejects_passthrough(self):
        jf = project(PASSTHROUGH, JumpFunctionKind.INTRAPROCEDURAL)
        assert jf.is_bottom

    def test_accepts_constant_global(self):
        jf = project(LITERAL_5, JumpFunctionKind.INTRAPROCEDURAL, is_global=True)
        assert jf.evaluate({}) == 5

    def test_ignores_entry_values(self):
        # even if the env knows k, the intraprocedural function is fixed ⊥
        jf = project(PASSTHROUGH, JumpFunctionKind.INTRAPROCEDURAL)
        assert jf.evaluate({"k": 3}) is BOTTOM


class TestPassThroughProjection:
    def test_accepts_passthrough(self):
        jf = project(PASSTHROUGH, JumpFunctionKind.PASS_THROUGH)
        assert jf.evaluate({"k": 3}) == 3
        assert jf.support == {"k"}

    def test_accepts_constant(self):
        jf = project(LITERAL_5, JumpFunctionKind.PASS_THROUGH)
        assert jf.evaluate({}) == 5

    def test_rejects_polynomial(self):
        jf = project(POLY, JumpFunctionKind.PASS_THROUGH)
        assert jf.is_bottom

    def test_global_passthrough(self):
        gid = GlobalId("c", 0)
        jf = project(entry_expr(gid), JumpFunctionKind.PASS_THROUGH, is_global=True)
        assert jf.evaluate({gid: 10}) == 10

    def test_support_of_passthrough_is_single_parameter(self):
        # §3.1.5 case 2: each actual depends on exactly one formal
        jf = project(PASSTHROUGH, JumpFunctionKind.PASS_THROUGH)
        assert len(jf.support) == 1


class TestPolynomialProjection:
    def test_accepts_polynomial(self):
        jf = project(POLY, JumpFunctionKind.POLYNOMIAL)
        assert jf.evaluate({"k": 20}) == 41

    def test_bottom_expression_stays_bottom(self):
        jf = project(BOTTOM_EXPR, JumpFunctionKind.POLYNOMIAL)
        assert jf.is_bottom

    def test_cost_tracks_expression_size(self):
        simple = project(LITERAL_5, JumpFunctionKind.POLYNOMIAL)
        poly = project(POLY, JumpFunctionKind.POLYNOMIAL)
        assert poly.cost > simple.cost


class TestSubsetChain:
    """§3.1: each jump function's constants ⊆ the next one's."""

    CASES = [
        (LITERAL_5, True, False),
        (LITERAL_5, False, False),
        (PASSTHROUGH, False, False),
        (POLY, False, False),
        (entry_expr(GlobalId("c", 1)), False, True),
        (BOTTOM_EXPR, False, False),
    ]

    @pytest.mark.parametrize("expr,is_lit,is_glob", CASES)
    def test_chain_on_every_expression(self, expr, is_lit, is_glob):
        env = {"k": 7, GlobalId("c", 1): 3}
        chain = [
            JumpFunctionKind.LITERAL,
            JumpFunctionKind.INTRAPROCEDURAL,
            JumpFunctionKind.PASS_THROUGH,
            JumpFunctionKind.POLYNOMIAL,
        ]
        previous_value = None
        for kind in chain:
            jf = project(expr, kind, is_literal_actual=is_lit, is_global=is_glob)
            value = jf.evaluate(env)
            if previous_value is not None and is_constant(previous_value):
                assert value == previous_value, (
                    f"{kind} lost a constant the weaker function found"
                )
            if is_constant(value):
                previous_value = value


class TestCallSiteFunctions:
    def make_site(self):
        site = CallSiteFunctions(site_id=0, caller="p", callee="q")
        site.formals["a"] = project(LITERAL_5, JumpFunctionKind.POLYNOMIAL)
        site.formals["b"] = project(PASSTHROUGH, JumpFunctionKind.POLYNOMIAL)
        gid = GlobalId("c", 0)
        site.globals[gid] = project(entry_expr(gid), JumpFunctionKind.POLYNOMIAL)
        return site, gid

    def test_evaluate_all(self):
        site, gid = self.make_site()
        values = evaluate_all(site, {"k": 2, gid: 9})
        assert values["a"] == 5
        assert values["b"] == 2
        assert values[gid] == 9

    def test_function_for_dispatches_on_key_type(self):
        site, gid = self.make_site()
        assert site.function_for("a") is site.formals["a"]
        assert site.function_for(gid) is site.globals[gid]
        assert site.function_for("zz") is None

    def test_total_cost(self):
        site, _ = self.make_site()
        assert site.total_cost() == sum(jf.cost for _, jf in site.all_functions())

    def test_constants_subset_holds_between_sites(self):
        weak_site = CallSiteFunctions(site_id=0, caller="p", callee="q")
        # a computed constant: the literal jump function misses it
        weak_site.formals["a"] = project(
            LITERAL_5, JumpFunctionKind.LITERAL, is_literal_actual=False
        )
        strong_site = CallSiteFunctions(site_id=0, caller="p", callee="q")
        strong_site.formals["a"] = project(LITERAL_5, JumpFunctionKind.POLYNOMIAL)
        assert constants_subset_holds(weak_site, strong_site, {})
        assert not constants_subset_holds(strong_site, weak_site, {})
