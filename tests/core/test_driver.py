"""Integration tests: the full analyzer against hand-computed CONSTANTS."""

import pytest

from repro import AnalysisConfig, Analyzer, JumpFunctionKind, analyze
from repro.core.config import TABLE2_CONFIGS, TABLE3_CONFIGS


PROGRAM = """
program main
  integer n, m, unused
  common /cfg/ gmax
  integer gmax
  call init
  n = 10
  m = n * 2 + 1
  call work(n, m)
  call chain(4)
  read unused
  call sink(unused)
end

subroutine init
  common /cfg/ g
  integer g
  g = 100
end

subroutine work(k, j)
  integer k, j
  common /cfg/ lim
  integer lim
  j = k + lim
end

subroutine chain(d)
  integer d
  if (d > 0) then
    call leaf(d)
  endif
end

subroutine leaf(x)
  integer x
  write x
end

subroutine sink(v)
  integer v
  write v
end
"""


class TestConstantsSets:
    def test_polynomial_constants(self):
        result = analyze(PROGRAM)
        assert result.constants("work") == {"k": 10, "j": 21, "cfg.gmax": 100}
        assert result.constants("chain") == {"d": 4, "cfg.gmax": 100}
        assert result.constants("leaf") == {"x": 4, "cfg.gmax": 100}
        assert result.constants("sink") == {"cfg.gmax": 100}

    def test_pass_through_equals_polynomial_here(self):
        # 'n' is a local constant, so gcp folds 'n*2+1' and pass-through
        # matches polynomial on this program — the paper's §4.2 finding.
        poly = analyze(PROGRAM, AnalysisConfig(JumpFunctionKind.POLYNOMIAL))
        passthrough = analyze(PROGRAM, AnalysisConfig(JumpFunctionKind.PASS_THROUGH))
        for proc in poly.lowered.procedures:
            assert poly.constants(proc) == passthrough.constants(proc)

    def test_polynomial_beats_pass_through_on_formal_arithmetic(self):
        source = """
program main
  call outer(20)
end
subroutine outer(k)
  integer k
  call inner(2 * k + 1)
end
subroutine inner(v)
  integer v
  write v
end
"""
        poly = analyze(source, AnalysisConfig(JumpFunctionKind.POLYNOMIAL))
        passthrough = analyze(source, AnalysisConfig(JumpFunctionKind.PASS_THROUGH))
        assert poly.constants("inner") == {"v": 41}
        assert passthrough.constants("inner") == {}

    def test_intraprocedural_depth_one_only(self):
        result = analyze(PROGRAM, AnalysisConfig(JumpFunctionKind.INTRAPROCEDURAL))
        # chain -> leaf passes its own formal: depth 2, missed
        assert "x" not in result.constants("leaf")
        # main -> chain passes a literal, found
        assert result.constants("chain")["d"] == 4

    def test_literal_misses_globals(self):
        result = analyze(PROGRAM, AnalysisConfig(JumpFunctionKind.LITERAL))
        assert "cfg.gmax" not in result.constants("work")
        assert result.constants("chain") == {"d": 4}

    def test_read_value_never_constant(self):
        result = analyze(PROGRAM)
        assert "v" not in result.constants("sink")

    def test_never_called_procedure_stays_top(self):
        source = PROGRAM + "\nsubroutine orphan(z)\ninteger z\nwrite z\nend\n"
        result = analyze(source)
        assert "orphan" not in result.solved.reached
        from repro.core.lattice import TOP

        assert result.solved.val["orphan"]["z"] is TOP

    def test_meet_across_sites(self):
        source = """
program main
  call s(1)
  call s(2)
  call t(3)
  call t(3)
end
subroutine s(a)
  integer a
  write a
end
subroutine t(b)
  integer b
  write b
end
"""
        result = analyze(source)
        assert result.constants("s") == {}
        assert result.constants("t") == {"b": 3}


class TestOrderings:
    """The paper's structural claims, asserted on the integration program."""

    def test_table2_column_ordering(self):
        analyzer = Analyzer(PROGRAM)
        results = analyzer.sweep(TABLE2_CONFIGS)
        counts = {name: r.constants_found for name, r in results.items()}
        assert counts["literal"] <= counts["intraprocedural"]
        assert counts["intraprocedural"] <= counts["pass_through"]
        assert counts["pass_through"] <= counts["polynomial"]
        assert counts["pass_through_no_rjf"] <= counts["pass_through"]
        assert counts["polynomial_no_rjf"] <= counts["polynomial"]

    def test_mod_never_hurts(self):
        analyzer = Analyzer(PROGRAM)
        results = analyzer.sweep(TABLE3_CONFIGS)
        assert (
            results["polynomial_no_mod"].constants_found
            <= results["polynomial_with_mod"].constants_found
        )

    def test_interprocedural_beats_intraprocedural(self):
        analyzer = Analyzer(PROGRAM)
        results = analyzer.sweep(TABLE3_CONFIGS)
        assert (
            results["intraprocedural_only"].constants_found
            <= results["polynomial_with_mod"].constants_found
        )

    def test_constants_subset_across_jump_functions(self):
        analyzer = Analyzer(PROGRAM)
        weak = analyzer.run(AnalysisConfig(JumpFunctionKind.LITERAL))
        strong = analyzer.run(AnalysisConfig(JumpFunctionKind.POLYNOMIAL))
        for proc in weak.lowered.procedures:
            weak_constants = weak.constants(proc)
            strong_constants = strong.constants(proc)
            for name, value in weak_constants.items():
                assert strong_constants.get(name) == value


class TestCompleteMode:
    DEAD_BRANCH = """
program main
  integer n, mode
  mode = 0
  n = 10
  call work(n)
  if (mode /= 0) then
    call work(99)
  endif
end

subroutine work(k)
  integer k
  write k
end
"""

    def test_dead_call_removed_exposes_constant(self):
        normal = analyze(self.DEAD_BRANCH)
        complete = analyze(
            self.DEAD_BRANCH,
            AnalysisConfig(JumpFunctionKind.POLYNOMIAL, complete=True),
        )
        assert "k" not in normal.constants("work")
        assert complete.constants("work") == {"k": 10}

    def test_complete_stats_recorded(self):
        result = analyze(
            self.DEAD_BRANCH,
            AnalysisConfig(JumpFunctionKind.POLYNOMIAL, complete=True),
        )
        stats = result.complete_stats
        assert stats is not None
        assert stats.folded_branches >= 1
        assert stats.rounds >= 2  # one mutating round + one confirming round

    def test_one_dce_round_suffices(self):
        # the paper's observation: the second propagation exposes no new
        # dead code
        result = analyze(
            self.DEAD_BRANCH,
            AnalysisConfig(JumpFunctionKind.POLYNOMIAL, complete=True),
        )
        assert result.complete_stats.dce_rounds_with_changes == 1

    def test_complete_on_clean_program_single_extra_round(self):
        source = "program main\nn = 1\nwrite n\nend\n"
        result = analyze(
            source, AnalysisConfig(JumpFunctionKind.POLYNOMIAL, complete=True)
        )
        assert result.complete_stats.dce_rounds_with_changes <= 1


class TestRecursion:
    FACT = """
program main
  integer r
  r = 1
  call fact(5, r)
  write r
end
subroutine fact(n, acc)
  integer n, acc
  if (n > 1) then
    acc = acc * n
    call fact(n - 1, acc)
  endif
end
"""

    def test_recursive_program_terminates(self):
        result = analyze(self.FACT)
        # n is 5 at the outer call but n-1 inside: meets to bottom
        assert "n" not in result.constants("fact")

    def test_mutual_recursion_terminates(self):
        source = """
program main
  call even(4)
end
subroutine even(n)
  integer n
  if (n > 0) call odd(n - 1)
end
subroutine odd(n)
  integer n
  if (n > 0) call even(n - 1)
end
"""
        result = analyze(source)
        assert result.solved.passes > 0


class TestResultApi:
    def test_transformed_source_parses(self):
        from repro.frontend import parse_program

        result = analyze(PROGRAM)
        transformed = result.transformed_source()
        assert transformed != PROGRAM
        parse_program(transformed)  # must still be a valid program

    def test_transformed_source_substitutes_global(self):
        result = analyze(PROGRAM)
        transformed = result.transformed_source()
        assert "k + lim" not in transformed
        assert "10 + 100" in transformed

    def test_timings_cover_stages(self):
        result = analyze(PROGRAM)
        assert {"lower", "modref", "returns", "forward", "solve", "record"} <= set(
            result.timings
        )

    def test_counts_consistent(self):
        result = analyze(PROGRAM)
        assert result.constants_found == result.substitutions.pairs
        assert result.references_substituted >= result.constants_found

    def test_analyzer_reuses_program(self):
        analyzer = Analyzer(PROGRAM)
        first = analyzer.run()
        second = analyzer.run()
        assert first.constants_found == second.constants_found

    def test_analyze_accepts_parsed_program(self):
        from repro.frontend import parse_program

        program = parse_program(PROGRAM)
        result = analyze(program)
        assert result.constants_found > 0
