"""Tests for the sparse delta-driven engine: hash-consing, the support
index, constant hoisting, ⊥ handling, and the evaluation memo."""

from repro import analyze
from repro.analysis.ssa import ensure_global_symbols
from repro.callgraph import build_call_graph, compute_modref
from repro.core.binding_solver import solve_binding_graph
from repro.core.builder import build_forward_jump_functions
from repro.core.config import AnalysisConfig, JumpFunctionKind
from repro.core.engine import DeltaEngine, build_support_index
from repro.core.exprs import (
    ConstExpr,
    EntryExpr,
    _BottomExpr,
    const_expr,
    entry_expr,
    intern_counters,
    make_binary,
)
from repro.core.jump_functions import CallSiteFunctions
from repro.core.lattice import BOTTOM
from repro.core.returns import build_return_jump_functions
from repro.core.solver import SolveResult, initial_val, solve, solve_dense
from repro.frontend import parse_program
from repro.ir import lower_program


def pipeline(source, config=None):
    config = config or AnalysisConfig()
    program = parse_program(source)
    lowered = lower_program(program)
    ensure_global_symbols(lowered)
    graph = build_call_graph(lowered)
    modref = compute_modref(lowered, graph)
    returns = build_return_jump_functions(lowered, graph, modref, config)
    forward = build_forward_jump_functions(lowered, modref, returns, config)
    return lowered, graph, forward


class TestHashConsing:
    def test_const_interned(self):
        assert const_expr(7) is const_expr(7)

    def test_bool_const_distinct_from_int(self):
        # True == 1 in Python, but LOGICAL .true. is not INTEGER 1
        assert const_expr(True) is not const_expr(1)
        assert const_expr(False) is not const_expr(0)

    def test_entry_interned(self):
        assert entry_expr("x") is entry_expr("x")

    def test_op_interned_across_builds(self):
        a = make_binary("+", entry_expr("x"), const_expr(1))
        b = make_binary("+", entry_expr("x"), const_expr(1))
        assert a is b

    def test_structural_equality_without_interning(self):
        # direct construction bypasses the table but still compares equal
        assert ConstExpr(7) == const_expr(7)
        assert ConstExpr(7) is not const_expr(7)
        assert EntryExpr("x") == entry_expr("x")

    def test_counters_exposed(self):
        before = intern_counters()["expr_intern_hits"]
        const_expr(424242)  # may miss or hit
        const_expr(424242)  # certainly hits now
        assert intern_counters()["expr_intern_hits"] > before
        assert set(intern_counters()) == {
            "expr_intern_hits",
            "expr_intern_misses",
            "expr_intern_entries",
            "expr_intern_generation",
            "expr_kernel_compiles",
            "expr_kernel_hits",
            "expr_kernel_entries",
        }


SIMPLE = """
program m
  call s(1)
end
subroutine s(a)
  integer a
  write a
end
"""


class TestSupportIndex:
    def test_builder_precomputes_index(self):
        lowered, graph, forward = pipeline(SIMPLE)
        assert forward.index is not None
        assert forward.support_index(lowered) is forward.index

    def test_seeds_and_callees(self):
        lowered, graph, forward = pipeline(SIMPLE)
        index = forward.index
        assert [e.key for e in index.seeds["m"]] == ["a"]
        assert index.callees["m"] == ("s",)

    def test_const_hoisted_at_build(self):
        # the literal jump function folds at index construction: §3.1.5
        # charges building it, not re-deriving its value each pass
        lowered, graph, forward = pipeline(SIMPLE)
        (edge,) = forward.index.seeds["m"]
        assert edge.const == 1
        assert edge.support == ()

    def test_pass_through_edge_has_support(self):
        source = """
program m
  call t(1)
end
subroutine t(x)
  integer x
  call s(x)
end
subroutine s(a)
  integer a
  write a
end
"""
        lowered, graph, forward = pipeline(source)
        (edge,) = forward.index.seeds["t"]
        assert edge.const is None
        assert edge.support == ("x",)
        assert forward.index.dependents[("t", "x")] == (edge,)

    def test_unbound_callee_key_is_killed(self):
        # hand-assemble a site that binds nothing: the callee formal must
        # be killed at seed time (skipped, not evaluated)
        lowered, _, _ = pipeline(SIMPLE)
        site = CallSiteFunctions(site_id=0, caller="m", callee="s")
        index = build_support_index(lowered, {0: site})
        assert index.kills["m"] == (("s", "a"),)
        result = SolveResult(val=initial_val(lowered))
        engine = DeltaEngine(index, result.val, result)
        changed = engine.seed("m")
        assert result.val["s"]["a"] is BOTTOM
        assert result.skipped == 1
        assert result.evaluations == 0
        assert changed == {"s": {"a": None}}


class TestEngineCounters:
    def test_constant_program_needs_no_evaluations(self):
        lowered, graph, forward = pipeline(SIMPLE)
        result = solve(lowered, graph, forward)
        assert result.evaluations == 0
        assert result.meets >= 1
        assert result.val["s"]["a"] == 1

    BOTTOM_SOURCE = """
program m
  read n
  call s(n)
end
subroutine s(a)
  integer a
  write a
end
"""

    def test_bottom_function_never_evaluated_by_solver(self, monkeypatch):
        # a ⊥ jump function contributes its one ⊥ by meet; the engine
        # must not call evaluate() on it even once
        lowered, graph, forward = pipeline(self.BOTTOM_SOURCE)
        calls = []
        original = _BottomExpr.evaluate

        def counting(self, env):
            calls.append(1)
            return original(self, env)

        monkeypatch.setattr(_BottomExpr, "evaluate", counting)
        result = solve(lowered, graph, forward)
        assert result.val["s"]["a"] is BOTTOM
        assert result.bottom_skips >= 1
        assert calls == []

    def test_bottom_function_evaluated_at_most_once_end_to_end(
        self, monkeypatch
    ):
        # across the whole analysis (stage-2 projection included) the ⊥
        # expression is consulted at most once per jump function
        calls = []
        original = _BottomExpr.evaluate

        def counting(self, env):
            calls.append(1)
            return original(self, env)

        monkeypatch.setattr(_BottomExpr, "evaluate", counting)
        lowered, graph, forward = pipeline(self.BOTTOM_SOURCE)
        solve(lowered, graph, forward)
        bottom_functions = sum(
            1
            for site in forward.sites.values()
            for _, jf in site.all_functions()
            if jf.expr.is_bottom
        )
        assert len(calls) <= bottom_functions

    def test_memo_hits_across_duplicate_sites(self):
        # two sites pass the same polynomial of the same entry key: the
        # interned expression plus equal support slice memoizes
        source = """
program m
  call t(3)
end
subroutine t(x)
  integer x
  call s(x + 1)
  call s(x + 1)
end
subroutine s(a)
  integer a
  write a
end
"""
        config = AnalysisConfig(jump_function=JumpFunctionKind.POLYNOMIAL)
        lowered, graph, forward = pipeline(source, config)
        result = solve(lowered, graph, forward)
        assert result.val["s"]["a"] == 4
        assert result.memo_hits >= 1
        assert result.memo_misses >= 1

    def test_intern_clear_mid_solve_cannot_serve_stale_memo(self):
        # the evaluation memo and kernel cache key expressions by id();
        # clearing the intern table mid-solve frees those objects for id
        # recycling, so both caches also key on the table's generation
        # counter — a cleared table must never serve a pre-clear entry
        from repro.core.exprs import clear_intern_table

        source = """
program m
  call t(3)
end
subroutine t(x)
  integer x
  call s(x + 1)
end
subroutine s(a)
  integer a
  write a
end
"""
        config = AnalysisConfig(jump_function=JumpFunctionKind.POLYNOMIAL)
        lowered, graph, forward = pipeline(source, config)
        result = SolveResult(val=initial_val(lowered))
        engine = DeltaEngine(
            forward.support_index(lowered), result.val, result, compiled=True
        )
        engine.seed("m")
        engine.seed("t")  # evaluates x + 1, memoizes under this generation
        assert result.val["s"]["a"] == 4
        hits_before = result.memo_hits
        clear_intern_table()
        # same caller env, same expression object: without the generation
        # in the key this re-evaluation would memo-hit; after a clear it
        # must miss (and still compute the right value)
        engine.apply_deltas("t", {"x": None})
        assert result.memo_hits == hits_before
        assert result.val["s"]["a"] == 4

    def test_stats_report_lists_engine_counters(self):
        result = analyze(SIMPLE)
        report = result.stats_report()
        for counter in ("deltas", "skipped", "memo_hits", "bottom_skips"):
            assert counter in report
        assert "expr_intern_hits" in report


class TestSolverAgreement:
    def test_three_solvers_agree_with_mutation(self):
        source = """
program m
  common /c/ g
  integer g
  g = 5
  call t(2)
  call t(g)
end
subroutine t(x)
  integer x
  common /c/ g
  integer g
  call s(x + g)
  g = g + 1
end
subroutine s(a)
  integer a
  write a
end
"""
        for kind in JumpFunctionKind:
            config = AnalysisConfig(jump_function=kind)
            lowered, graph, forward = pipeline(source, config)
            dense = solve_dense(lowered, graph, forward)
            sparse = solve(lowered, graph, forward)
            binding = solve_binding_graph(lowered, graph, forward)
            assert dense.val == sparse.val == binding.val, kind
            assert dense.reached == sparse.reached == binding.reached, kind
            assert (
                dense.all_constants()
                == sparse.all_constants()
                == binding.all_constants()
            ), kind
