"""Tests for the flat slab engine: code encoding, slab construction,
segment transport, and the invariants the integer meet relies on."""

from array import array

import pytest

from repro.analysis.ssa import ensure_global_symbols
from repro.callgraph import build_call_graph, compute_modref
from repro.core.builder import build_forward_jump_functions
from repro.core.config import AnalysisConfig, JumpFunctionKind
from repro.core.exprs import clear_intern_table
from repro.core.lattice import BOTTOM, TOP
from repro.core.returns import build_return_jump_functions
from repro.core.slab import (
    BOTTOM_CODE,
    KIND_KILL,
    TOP_CODE,
    ConstPool,
    SlabSegment,
    build_slab,
    encode_env,
    slab_for,
    solve_flat,
)
from repro.core.solver import solve
from repro.frontend import parse_program
from repro.ir import lower_program


def pipeline(source, config=None):
    config = config or AnalysisConfig()
    program = parse_program(source)
    lowered = lower_program(program)
    ensure_global_symbols(lowered)
    graph = build_call_graph(lowered)
    modref = compute_modref(lowered, graph)
    returns = build_return_jump_functions(lowered, graph, modref, config)
    forward = build_forward_jump_functions(lowered, modref, returns, config)
    return lowered, graph, forward


DIAMOND = """
program m
  call b(1)
  call c(2)
end
subroutine b(x)
  integer x
  call d(x)
end
subroutine c(y)
  integer y
  call d(y)
end
subroutine d(z)
  integer z
  write z
end
"""


class TestConstPool:
    def test_sentinels_have_fixed_codes(self):
        pool = ConstPool()
        assert pool.encode(TOP) == TOP_CODE
        assert pool.encode(BOTTOM) == BOTTOM_CODE

    def test_round_trip(self):
        pool = ConstPool()
        for value in (7, -3, 0, 10**30, True, False):
            assert pool.decode(pool.encode(value)) is value
        assert pool.decode(TOP_CODE) is TOP
        assert pool.decode(BOTTOM_CODE) is BOTTOM

    def test_interning_is_stable(self):
        pool = ConstPool()
        assert pool.encode(42) == pool.encode(42)

    def test_bool_never_aliases_int(self):
        # True == 1 under ==, but LOGICAL .true. is not INTEGER 1: equal
        # codes must imply lattice-equal values for the integer meet
        pool = ConstPool()
        assert pool.encode(True) != pool.encode(1)
        assert pool.encode(False) != pool.encode(0)
        assert pool.decode(pool.encode(True)) is True
        assert pool.decode(pool.encode(1)) == 1

    def test_codes_start_after_sentinels(self):
        pool = ConstPool()
        assert pool.encode(5) >= 2


class TestBuildSlab:
    def build(self, source, config=None):
        lowered, graph, forward = pipeline(source, config)
        index = forward.support_index(lowered)
        return build_slab(lowered, graph, index), lowered

    def test_one_slot_per_entry_key(self):
        slab, lowered = self.build(DIAMOND)
        assert slab.nslots == len(slab.keys_flat)
        assert set(slab.proc_names) == {"m", "b", "c", "d"}
        # slot_base is a proper prefix-sum over per-procedure key counts
        assert list(slab.slot_base)[0] == 0
        assert list(slab.slot_base)[-1] == slab.nslots

    def test_stream_covers_every_reached_seed_edge(self):
        slab, lowered = self.build(DIAMOND)
        index_edges = sum(
            len(edges)
            for edges in slab_edges(lowered, DIAMOND).values()
        )
        non_kill = sum(1 for kind in slab.p1_kind if kind != KIND_KILL)
        assert non_kill == index_edges

    def test_parallel_stream_arrays_agree(self):
        slab, _ = self.build(DIAMOND)
        assert (
            len(slab.p1_target)
            == len(slab.p1_kind)
            == len(slab.p1_payload)
            == len(slab.p1_enq)
        )
        assert all(0 <= t < slab.nslots for t in slab.p1_target)

    def test_dependent_csr_points_into_stream(self):
        slab, _ = self.build(DIAMOND)
        assert list(slab.dep_indptr)[0] == 0
        assert list(slab.dep_indptr)[-1] == len(slab.dep_edges)
        stream = len(slab.p1_target)
        assert all(0 <= e < stream for e in slab.dep_edges)

    def test_slab_cached_per_forward(self):
        lowered, graph, forward = pipeline(DIAMOND)
        first = slab_for(forward, lowered, graph)
        second = slab_for(forward, lowered, graph)
        assert first is second

    def test_nbytes_positive_and_memoized(self):
        slab, _ = self.build(DIAMOND)
        assert slab.nbytes() > 0
        assert slab.nbytes() == slab.nbytes()


def slab_edges(lowered, source):
    _, graph, forward = pipeline(source)
    return forward.support_index(lowered).seeds


class TestSolveFlat:
    def test_matches_object_engine_on_diamond(self):
        lowered, graph, forward = pipeline(DIAMOND)
        obj = solve(lowered, graph, forward)
        flat = solve_flat(lowered, graph, forward)
        assert flat.val == obj.val
        assert flat.reached == obj.reached
        assert flat.val["d"]["z"] is BOTTOM

    def test_slab_counters_populated(self):
        lowered, graph, forward = pipeline(DIAMOND)
        flat = solve_flat(lowered, graph, forward)
        assert flat.slab_slots == 3  # b.x, c.y, d.z (m has no keys)
        assert flat.slab_bytes > 0
        assert flat.passes == 1 + flat.batch_drains

    def test_flat_flag_routes_through_solve(self):
        lowered, graph, forward = pipeline(DIAMOND)
        flat = solve(lowered, graph, forward, flat=True)
        assert flat.slab_slots > 0

    def test_sanitizer_falls_back_to_object_engine(self):
        from repro.diagnostics.sanitizer import LatticeSanitizer

        lowered, graph, forward = pipeline(DIAMOND)
        sanitizer = LatticeSanitizer()
        result = solve(
            lowered, graph, forward, flat=True, sanitizer=sanitizer
        )
        # sanitizing is about observability: the flat engine has no
        # per-meet hooks, so the gate must route to the object engine
        assert result.slab_slots == 0
        assert result.val["d"]["z"] is BOTTOM

    def test_mid_solve_intern_clear_under_flat(self):
        # slab kernels close over slot ids and the pool, never interned
        # expression nodes: dropping the intern table between build and
        # solve (an incremental-session hazard) must not perturb VALs
        source = """
program m
  integer k
  k = 4
  call t(k + 1, 2)
end
subroutine t(x, y)
  integer x, y
  call s(x * y + 1)
end
subroutine s(a)
  integer a
  write a
end
"""
        config = AnalysisConfig(jump_function=JumpFunctionKind.POLYNOMIAL)
        lowered, graph, forward = pipeline(source, config)
        expected = solve(lowered, graph, forward).val
        slab_for(forward, lowered, graph)  # build + cache the slab
        clear_intern_table()
        try:
            flat = solve_flat(lowered, graph, forward)
        finally:
            clear_intern_table()
        assert flat.val == expected
        assert flat.val["s"]["a"] == 11


class TestSlabSegment:
    def test_round_trip(self):
        env = {"a": 3, "b": TOP, "c": BOTTOM, "d": True, "e": 1}
        segment = encode_env(env)
        assert dict(segment.items()) == env
        # class-aware: the True slot decodes to bool, not int
        decoded = dict(segment.items())
        assert decoded["d"] is True
        assert decoded["e"] == 1 and decoded["e"] is not True

    def test_empty_env(self):
        segment = encode_env({})
        assert dict(segment.items()) == {}

    def test_pool_is_self_contained(self):
        env = {"a": 10**25, "b": 10**25}
        segment = encode_env(env)
        assert len(segment.pool) == 1  # interned within the segment
        assert dict(segment.items()) == env

    def test_segment_is_frozen_and_slotted(self):
        segment = encode_env({"a": 1})
        assert not hasattr(segment, "__dict__")
        with pytest.raises(AttributeError):
            segment.keys = ()

    def test_codes_are_compact_int32(self):
        segment = encode_env({"a": 1})
        assert isinstance(segment.codes, array)
        assert segment.codes.itemsize == 4
