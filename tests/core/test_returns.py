"""Tests for return jump function generation (stage 1, §3.2)."""

from repro.analysis.ssa import ensure_global_symbols
from repro.analysis.valuenum import RESULT_KEY
from repro.callgraph import build_call_graph, compute_modref
from repro.core.config import AnalysisConfig
from repro.core.exprs import ConstExpr, EntryExpr
from repro.core.returns import build_return_jump_functions
from repro.frontend import parse_program
from repro.frontend.symbols import GlobalId
from repro.ir import lower_program


def returns_of(source, config=None):
    lowered = lower_program(parse_program(source))
    ensure_global_symbols(lowered)
    graph = build_call_graph(lowered)
    modref = compute_modref(lowered, graph)
    config = config or AnalysisConfig()
    return build_return_jump_functions(lowered, graph, modref, config), lowered


WRAP = "program t\nx = 1\nend\n"


class TestBasicReturnFunctions:
    def test_constant_assignment(self):
        result, _ = returns_of(WRAP + "subroutine s(a)\ninteger a\na = 5\nend\n")
        assert result.function("s", "a") == ConstExpr(5)

    def test_polynomial_of_entry(self):
        result, _ = returns_of(
            WRAP + "subroutine s(a, b)\ninteger a, b\na = b * 2 + 1\nend\n"
        )
        function = result.function("s", "a")
        assert function.support() == {"b"}
        assert function.evaluate({"b": 10}) == 21

    def test_identity_for_untouched_formal(self):
        result, _ = returns_of(
            WRAP + "subroutine s(a, b)\ninteger a, b\na = b\nend\n"
        )
        assert result.function("s", "b") == EntryExpr("b")

    def test_global_return_function(self):
        result, _ = returns_of(
            WRAP + "subroutine init\ncommon /c/ g\ninteger g\ng = 100\nend\n"
        )
        assert result.function("init", GlobalId("c", 0)) == ConstExpr(100)

    def test_function_result_key(self):
        result, _ = returns_of(
            WRAP + "integer function f(x)\ninteger x\nf = x + 1\nend\n"
        )
        function = result.function("f", RESULT_KEY)
        assert function.evaluate({"x": 41}) == 42

    def test_unknown_exit_value_absent(self):
        result, _ = returns_of(
            WRAP + "subroutine s(a)\ninteger a\nread a\nend\n"
        )
        assert result.function("s", "a") is None

    def test_branch_merge_same_value(self):
        result, _ = returns_of(
            WRAP
            + "subroutine s(a, c)\ninteger a, c\n"
            "if (c > 0) then\na = 7\nelse\na = 7\nendif\nend\n"
        )
        assert result.function("s", "a") == ConstExpr(7)

    def test_branch_merge_different_values_absent(self):
        result, _ = returns_of(
            WRAP
            + "subroutine s(a, c)\ninteger a, c\n"
            "if (c > 0) then\na = 7\nelse\na = 8\nendif\nend\n"
        )
        assert result.function("s", "a") is None


class TestBottomUpComposition:
    def test_constants_flow_through_chains_of_returns(self):
        source = WRAP + (
            "subroutine leaf\ncommon /c/ g\ninteger g\ng = 100\nend\n"
            "subroutine middle\ncall leaf\nend\n"
        )
        result, _ = returns_of(source)
        # middle's return function for g comes from applying leaf's
        assert result.function("middle", GlobalId("c", 0)) == ConstExpr(100)

    def test_constant_argument_flows_into_return(self):
        source = WRAP + (
            "subroutine setv(x, v)\ninteger x, v\nx = v\nend\n"
            "subroutine wrap(y)\ninteger y\ncall setv(y, 9)\nend\n"
        )
        result, _ = returns_of(source)
        assert result.function("wrap", "y") == ConstExpr(9)

    def test_nonconstant_composition_degrades(self):
        # §3.2: return functions depending on the caller's parameters
        # cannot be evaluated as constant.
        source = WRAP + (
            "subroutine inc(x)\ninteger x\nx = x + 1\nend\n"
            "subroutine wrap(y)\ninteger y\ncall inc(y)\nend\n"
        )
        result, _ = returns_of(source)
        assert result.function("wrap", "y") is None

    def test_composed_mode_keeps_symbolic_chain(self):
        source = WRAP + (
            "subroutine inc(x)\ninteger x\nx = x + 1\nend\n"
            "subroutine wrap(y)\ninteger y\ncall inc(y)\nend\n"
        )
        config = AnalysisConfig(compose_return_functions=True)
        result, _ = returns_of(source, config)
        function = result.function("wrap", "y")
        assert function is not None
        assert function.evaluate({"y": 10}) == 11

    def test_recursive_procedure_conservative(self):
        source = """
program t
  call rec(3)
end
subroutine rec(n)
  integer n
  if (n > 0) then
    call rec(n - 1)
  endif
  n = 0
end
"""
        result, _ = returns_of(source)
        # 'n = 0' dominates every exit, so even with the conservative
        # in-SCC treatment the final assignment wins.
        assert result.function("rec", "n") == ConstExpr(0)

    def test_disabled_returns_empty_table(self):
        config = AnalysisConfig(use_return_jump_functions=False)
        result, _ = returns_of(
            WRAP + "subroutine s(a)\ninteger a\na = 5\nend\n", config
        )
        assert result.table == {}

    def test_count_nontrivial(self):
        result, _ = returns_of(
            WRAP + "subroutine s(a, b)\ninteger a, b\na = 5\nend\n"
        )
        assert result.count_nontrivial() >= 1
