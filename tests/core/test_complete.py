"""Unit tests for the complete-propagation loop."""

import pytest

from repro import AnalysisConfig, JumpFunctionKind, analyze
from repro.interp import run_program


def complete_config(**kwargs):
    return AnalysisConfig(
        jump_function=JumpFunctionKind.POLYNOMIAL, complete=True, **kwargs
    )


class TestRounds:
    def test_clean_program_single_round(self):
        # the first round finds no dead code, so the loop stops there.
        result = analyze("program m\nn = 1\nwrite n\nend\n", complete_config())
        assert result.complete_stats.rounds == 1
        assert result.complete_stats.dce_rounds_with_changes == 0

    def test_round_cap_respected(self):
        result = analyze(
            "program m\nn = 1\nwrite n\nend\n",
            complete_config(max_complete_rounds=1),
        )
        assert result.complete_stats.rounds <= 2

    def test_per_round_stats_recorded(self):
        source = """
program m
  n = 0
  if (n /= 0) then
    write 99
  endif
  write n
end
"""
        result = analyze(source, complete_config())
        stats = result.complete_stats
        assert stats.folded_branches >= 1
        assert stats.removed_blocks >= 1
        assert len(stats.per_round) >= 1
        assert "m" in stats.per_round[0]


class TestCascades:
    def test_two_level_dead_code_cascade(self):
        """Killing one branch makes a second branch's condition constant —
        the 'exposes additional constants' chain of §4.2."""
        source = """
program m
  integer mode, level
  mode = 0
  level = 1
  if (mode /= 0) then
    level = 2
  endif
  if (level == 1) then
    call leaf(7)
  else
    call leaf(8)
  endif
end
subroutine leaf(k)
  integer k
  write k
end
"""
        plain = analyze(source)
        complete = analyze(source, complete_config())
        assert "k" not in plain.constants("leaf")
        assert complete.constants("leaf") == {"k": 7}

    def test_transformed_program_semantics_unchanged(self):
        """DCE only removes code the constants prove dead, so the original
        execution outputs must be reproducible."""
        source = """
program m
  integer flag
  flag = 0
  if (flag /= 0) then
    write 111
  endif
  write 5
end
"""
        trace = run_program(source)
        result = analyze(source, complete_config())
        assert trace.outputs == [5]
        # the dead write is gone from the analyzed IR
        from repro.ir.instructions import WriteOut

        main_cfg = result.lowered.procedure("m").cfg
        writes = [
            i for _, i in main_cfg.instructions() if isinstance(i, WriteOut)
        ]
        # the folded branch's 'write 111' must not survive
        assert len(writes) == 1
        from repro.ir.instructions import Const

        assert writes[0].values == [Const(5, type=writes[0].values[0].type)]

    def test_complete_with_no_mod(self):
        source = """
program m
  n = 0
  if (n /= 0) then
    write 1
  endif
  write 2
end
"""
        result = analyze(source, complete_config(use_mod=False))
        assert result.complete_stats.folded_branches >= 1


class TestCallSiteRefresh:
    def test_removed_call_leaves_solver_consistent(self):
        source = """
program m
  integer off
  off = 0
  if (off /= 0) then
    call leaf(1)
  endif
  call leaf(2)
  call leaf(2)
end
subroutine leaf(k)
  integer k
  write k
end
"""
        result = analyze(source, complete_config())
        assert result.constants("leaf") == {"k": 2}
        # the dead site is gone from the call-site table
        callees = [c.callee for _, c in result.lowered.call_sites.values()]
        assert callees.count("leaf") == 2
