"""Tests for goal-directed procedure cloning (§5 extension)."""

import pytest

from repro import AnalysisConfig, JumpFunctionKind
from repro.core.cloning import (
    apply_clones,
    clone_and_reanalyze,
    plan_clone_groups,
)
from repro.interp import run_program
from repro.workloads import load, suite_names

CONFLICT = """
program main
  call kernel(8)
  call kernel(16)
  call kernel(16)
  call other(3)
end
subroutine kernel(n)
  integer n, i, acc
  acc = 0
  do i = 1, n
    acc = acc + i
  enddo
  write acc
end
subroutine other(j)
  integer j
  write j
end
"""


class TestPlanning:
    def test_conflicting_sites_grouped(self):
        report = clone_and_reanalyze(CONFLICT)
        kernel_groups = [g for g in report.groups if g.callee == "kernel"]
        assert len(kernel_groups) == 2
        vectors = {g.vector for g in kernel_groups}
        assert vectors == {(("n", 8),), (("n", 16),)}

    def test_single_site_procedure_not_cloned(self):
        report = clone_and_reanalyze(CONFLICT)
        assert all(g.callee != "other" for g in report.groups)

    def test_agreeing_sites_not_cloned(self):
        source = """
program main
  call s(5)
  call s(5)
end
subroutine s(a)
  integer a
  write a
end
"""
        report = clone_and_reanalyze(source)
        assert report.clones_created == 0
        assert report.cloned is None

    def test_clone_budget_respected(self):
        source = "program main\n" + "\n".join(
            f"  call s({c})" for c in (1, 2, 3, 4, 5, 6)
        ) + "\nend\nsubroutine s(a)\ninteger a\nwrite a\nend\n"
        report = clone_and_reanalyze(source, max_clones_per_procedure=2)
        assert report.clones_created == 2

    def test_main_never_cloned(self):
        report = clone_and_reanalyze(CONFLICT)
        assert all(g.callee != "main" for g in report.groups)


class TestTransformation:
    def test_recovers_conflicting_constants(self):
        report = clone_and_reanalyze(CONFLICT)
        assert report.constants_recovered >= 2
        assert report.cloned.constants("kernel")["n"] == 8
        assert report.cloned.constants("kernel_c1")["n"] == 16

    def test_transformed_source_parses(self):
        from repro.frontend import parse_program

        report = clone_and_reanalyze(CONFLICT)
        program = parse_program(report.transformed_source)
        assert "kernel_c1" in program.procedures

    def test_semantics_preserved(self):
        report = clone_and_reanalyze(CONFLICT)
        original_trace = run_program(CONFLICT)
        cloned_trace = run_program(report.transformed_source)
        assert original_trace.outputs == cloned_trace.outputs

    def test_code_growth_reported(self):
        report = clone_and_reanalyze(CONFLICT)
        assert report.code_growth > 1.0

    def test_apply_clones_idempotent_without_groups(self):
        from repro import analyze

        result = analyze(CONFLICT)
        assert apply_clones(result, []) == CONFLICT


class TestOnWorkloads:
    @pytest.mark.parametrize("name", ["adm", "spec77", "qcd"])
    def test_cloning_never_loses_constants(self, name):
        workload = load(name, scale=0.3)
        report = clone_and_reanalyze(workload.source)
        assert report.constants_after >= report.constants_before

    def test_conflicting_sites_idiom_recovered(self):
        # every workload contains deliberately conflicting call sites;
        # cloning must recover at least some of them somewhere
        recovered_total = 0
        for name in ("adm", "doduc", "spec77"):
            workload = load(name, scale=0.3)
            report = clone_and_reanalyze(workload.source)
            recovered_total += report.constants_recovered
        assert recovered_total > 0

    def test_semantics_preserved_on_workload(self):
        workload = load("mdg", scale=0.4)
        report = clone_and_reanalyze(workload.source)
        if report.cloned is None:
            pytest.skip("no clones planned at this scale")
        original = run_program(workload.source, inputs=workload.inputs)
        cloned = run_program(report.transformed_source, inputs=workload.inputs)
        assert original.outputs == cloned.outputs
