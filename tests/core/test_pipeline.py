"""The shared-artifact pipeline: stage-0 caching, sweep semantics, the
process-parallel multi-program sweep, and the Table 3 baseline contract."""

import pytest

from repro import AnalysisConfig, Analyzer, JumpFunctionKind, analyze
from repro.core.config import TABLE2_CONFIGS, TABLE3_CONFIGS
from repro.core.driver import Stage0Cache, sweep_programs
from repro.frontend import parse_program

PROGRAM = """
program main
  integer n, m
  common /cfg/ gmax
  integer gmax
  call init
  n = 10
  m = n * 2 + 1
  call work(n, m)
  call chain(4)
end

subroutine init
  common /cfg/ g
  integer g
  g = 100
end

subroutine work(k, j)
  integer k, j
  common /cfg/ lim
  integer lim
  j = k + lim
end

subroutine chain(d)
  integer d
  if (d > 0) then
    call leaf(d)
  endif
end

subroutine leaf(x)
  integer x
  write x
end
"""


class TestStage0Cache:
    def test_sweep_builds_stage0_exactly_once(self):
        cache = Stage0Cache()
        analyzer = Analyzer(PROGRAM, cache=cache)
        results = analyzer.sweep(TABLE2_CONFIGS)
        assert cache.misses == 1
        assert cache.hits == len(TABLE2_CONFIGS) - 1
        assert cache.bypasses == 0
        # every run after the first observed the cached stage 0
        flags = [r.stage0_cached for r in results.values()]
        assert flags.count(False) == 1 and flags.count(True) == len(flags) - 1

    def test_artifacts_shared_across_configs(self):
        analyzer = Analyzer(PROGRAM, cache=Stage0Cache())
        results = analyzer.sweep(TABLE2_CONFIGS)
        lowereds = {id(r.lowered) for r in results.values()}
        graphs = {id(r.call_graph) for r in results.values()}
        assert len(lowereds) == 1
        assert len(graphs) == 1

    def test_complete_config_bypasses_cache(self):
        cache = Stage0Cache()
        analyzer = Analyzer(PROGRAM, cache=cache)
        analyzer.run(AnalysisConfig(complete=True))
        assert cache.bypasses == 1
        assert cache.misses == 0
        # a complete run must not poison the shared artifacts
        fresh = analyzer.run()
        clean = analyze(PROGRAM, cache=None)
        assert fresh.all_constants() == clean.all_constants()

    def test_cache_keyed_by_source_identity(self):
        cache = Stage0Cache()
        first = Analyzer(PROGRAM, cache=cache)
        second = Analyzer(PROGRAM, cache=cache)  # same text, new parse
        assert first.stage0 is second.stage0
        assert cache.misses == 1

    def test_lru_eviction(self):
        cache = Stage0Cache(maxsize=2)
        programs = [
            f"program m\nn = {i}\nwrite n\nend\n" for i in range(3)
        ]
        for source in programs:
            cache.get(parse_program(source))
        assert len(cache) == 2
        cache.get(parse_program(programs[0]))  # evicted: builds again
        assert cache.misses == 4

    def test_sourceless_program_never_cached(self):
        cache = Stage0Cache()
        program = parse_program(PROGRAM)
        program.source = ""
        cache.get(program)
        assert cache.hits == cache.misses == 0
        assert len(cache) == 0

    def test_ssa_shared_between_stage1_and_stage2(self):
        result = analyze(PROGRAM, cache=Stage0Cache())
        for name, ssa in result.forward.ssas.items():
            assert result.returns.ssas[name] is ssa


ALL_KINDS = list(JumpFunctionKind)


class TestCacheCorrectness:
    """Cached sweeps must be bit-identical to fresh, uncached runs."""

    @pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda k: k.value)
    @pytest.mark.parametrize("use_mod", (True, False), ids=("mod", "no-mod"))
    @pytest.mark.parametrize("use_returns", (True, False), ids=("rjf", "no-rjf"))
    def test_cached_sweep_matches_fresh_analyze(self, kind, use_mod, use_returns):
        config = AnalysisConfig(
            jump_function=kind,
            use_return_jump_functions=use_returns,
            use_mod=use_mod,
        )
        analyzer = Analyzer(PROGRAM, cache=Stage0Cache())
        # warm the cache with a different configuration first
        analyzer.run(AnalysisConfig(jump_function=JumpFunctionKind.POLYNOMIAL))
        cached = analyzer.run(config)
        fresh = analyze(PROGRAM, config, cache=None)
        assert cached.constants_found == fresh.constants_found
        assert cached.references_substituted == fresh.references_substituted
        assert cached.all_constants() == fresh.all_constants()
        assert cached.solved.val == fresh.solved.val

    def test_repeated_sweeps_stable(self):
        analyzer = Analyzer(PROGRAM, cache=Stage0Cache())
        first = analyzer.sweep(TABLE2_CONFIGS)
        second = analyzer.sweep(TABLE2_CONFIGS)
        for name in TABLE2_CONFIGS:
            assert first[name].all_constants() == second[name].all_constants()


class TestBaselineSemantics:
    """Table 3 column 4: the purely intraprocedural baseline assumes ⊥ at
    every entry — DATA initializations included (see solver.bottom_val)."""

    WITHOUT_DATA = """
program main
  common /c/ g
  integer g, n
  n = 3
  write n
  write g
  call use
end
subroutine use
  common /c/ h
  integer h
  write h
end
"""
    WITH_DATA = WITHOUT_DATA.replace(
        "  integer g, n\n", "  integer g, n\n  data g /42/\n"
    )

    BASELINE = AnalysisConfig(intraprocedural_only=True)

    def test_baseline_invariant_under_data(self):
        plain = analyze(self.WITHOUT_DATA, self.BASELINE, cache=None)
        seeded = analyze(self.WITH_DATA, self.BASELINE, cache=None)
        assert plain.constants_found == seeded.constants_found
        assert plain.all_constants() == seeded.all_constants()

    def test_interprocedural_does_use_data(self):
        # sanity: DATA is not generally ignored — only the baseline floors it
        seeded = analyze(self.WITH_DATA, cache=None)
        assert seeded.constants("use").get("c.g") == 42

    def test_baseline_counts_every_procedure(self):
        result = analyze(self.WITHOUT_DATA, self.BASELINE, cache=None)
        assert result.solved.reached == set(result.solved.val)


class TestSweepPrograms:
    SOURCES = {
        "alpha": PROGRAM,
        "beta": "program m\nn = 5\ncall s(n)\nend\n"
                "subroutine s(a)\ninteger a\nwrite a\nend\n",
    }

    def expected(self):
        return {
            name: Analyzer(source).sweep(TABLE3_CONFIGS)
            for name, source in self.SOURCES.items()
        }

    def test_sequential_matches_per_program_sweep(self):
        swept = sweep_programs(self.SOURCES, TABLE3_CONFIGS)
        expected = self.expected()
        for name, cells in swept.items():
            for config_name, cell in cells.items():
                reference = expected[name][config_name]
                assert cell.constants_found == reference.constants_found
                assert cell.constants == reference.all_constants()

    def test_parallel_matches_sequential(self):
        sequential = sweep_programs(self.SOURCES, TABLE3_CONFIGS)
        parallel = sweep_programs(self.SOURCES, TABLE3_CONFIGS, processes=2)
        for name in self.SOURCES:
            for config_name in TABLE3_CONFIGS:
                left = sequential[name][config_name]
                right = parallel[name][config_name]
                assert left.constants_found == right.constants_found
                assert left.constants == right.constants

    def test_summary_carries_counters(self):
        swept = sweep_programs(self.SOURCES, {"default": AnalysisConfig()})
        cell = swept["beta"]["default"]
        assert cell.solver_counters["pops"] >= 1
        assert "solve" in cell.timings


class TestStatsSurface:
    def test_timings_include_cache_flag(self):
        cache = Stage0Cache()
        first = analyze(PROGRAM, cache=cache)
        second = analyze(PROGRAM, cache=cache)
        assert first.timings["stage0_cached"] == 0.0
        assert second.timings["stage0_cached"] == 1.0

    def test_stats_report_mentions_everything(self):
        result = analyze(PROGRAM, cache=Stage0Cache())
        report = result.stats_report()
        for token in ("lower", "modref", "solve", "passes", "pops",
                      "evaluations", "stage0_cached"):
            assert token in report

    def test_stage0_timings_survive_cache_hits(self):
        cache = Stage0Cache()
        analyze(PROGRAM, cache=cache)
        hit = analyze(PROGRAM, cache=cache)
        assert "lower" in hit.timings and "modref" in hit.timings
