"""Unit tests for substitution counting and source transformation."""

import pytest

from repro import AnalysisConfig, JumpFunctionKind, analyze
from repro.core.substitute import format_constant, transform_source
from repro.frontend import parse_program


SOURCE = """
program main
  integer n
  n = 3
  call s(n)
  call unused_never
end
subroutine s(a)
  integer a, b
  b = a * a + a
  write b
end
subroutine unused_never
  write 0
end
"""


class TestCounting:
    def test_pairs_vs_references(self):
        result = analyze(SOURCE)
        subs = result.substitutions
        s_report = subs.per_procedure["s"]
        # 'a' has three references in s, all constant
        assert s_report.reference_count >= 3
        assert any(sym.name == "a" for sym in s_report.substituted_symbols)

    def test_pair_counted_once_per_symbol(self):
        result = analyze(SOURCE)
        s_report = result.substitutions.per_procedure["s"]
        names = [sym.name for sym in s_report.substituted_symbols]
        assert len(names) == len(set(names))

    def test_interprocedural_subset(self):
        result = analyze(SOURCE)
        subs = result.substitutions
        assert subs.interprocedural_pairs <= subs.pairs
        assert subs.interprocedural_references <= subs.references

    def test_entry_reference_classified(self):
        result = analyze(SOURCE)
        s_report = result.substitutions.per_procedure["s"]
        assert any(sym.name == "a" for sym in s_report.entry_symbols)

    def test_unreached_procedure_not_counted(self):
        orphan_source = SOURCE + (
            "subroutine orphan(q)\ninteger q\nwrite q\nend\n"
        )
        result = analyze(orphan_source)
        assert "orphan" not in result.solved.reached
        assert "orphan" not in result.substitutions.per_procedure

    def test_defs_not_counted_as_references(self):
        source = """
program main
  call s(3)
end
subroutine s(a)
  integer a, b
  b = 1
  write b
end
"""
        result = analyze(source)
        s_report = result.substitutions.per_procedure["s"]
        # 'a' is constant but never *referenced*; 'b' is referenced once
        assert all(sym.name != "a" for sym in s_report.substituted_symbols)
        assert any(sym.name == "b" for sym in s_report.substituted_symbols)

    def test_dead_branch_references_not_counted(self):
        source = """
program main
  integer n
  n = 0
  if (n /= 0) then
    write n
  endif
  write 1
end
"""
        result = analyze(source)
        report = result.substitutions.per_procedure["main"]
        # n's only non-branch use sits in an unexecutable block; the
        # condition use itself still counts
        assert report.reference_count == 1


class TestKnownVsRelevant:
    """Metzger–Stroud's distinction, quantified (paper §4.1)."""

    def test_irrelevant_constants_excluded_from_headline(self):
        source = """
program main
  common /c/ g
  integer g
  g = 7
  call uses_it
  call ignores_it(1)
end
subroutine uses_it
  common /c/ h
  integer h
  write h
end
subroutine ignores_it(a)
  integer a
  write a
end
"""
        result = analyze(source)
        subs = result.substitutions
        # 'ignores_it' knows g = 7 but never references it
        ignores = subs.per_procedure["ignores_it"]
        assert any(str(key) == "/c/[0]" for key in ignores.irrelevant_keys)
        assert subs.known_constants > subs.interprocedural_pairs
        assert subs.irrelevant_constants >= 1

    def test_counts_are_consistent(self):
        from repro.workloads import load

        result = analyze(load("mdg", scale=0.4).source)
        subs = result.substitutions
        for proc_subs in subs.per_procedure.values():
            assert len(proc_subs.irrelevant_keys) <= proc_subs.known_constants
        assert subs.irrelevant_constants <= subs.known_constants


class TestTransformedSource:
    def test_replaces_all_constant_refs(self):
        result = analyze(SOURCE)
        transformed = result.transformed_source()
        assert "b = 3 * 3 + 3" in transformed

    def test_output_reparses(self):
        result = analyze(SOURCE)
        parse_program(result.transformed_source())

    def test_transform_source_helper_ordering(self):
        # replacements applied right-to-left must not corrupt offsets
        result = analyze(SOURCE)
        transformed = transform_source(SOURCE, result.substitutions)
        assert transformed == result.transformed_source()

    def test_logical_constant_spelling(self):
        assert format_constant(True) == ".true."
        assert format_constant(False) == ".false."
        assert format_constant(42) == "42"
        assert format_constant(-1) == "-1"

    def test_logical_substitution_in_source(self):
        source = """
program main
  logical flag
  flag = .true.
  call s(flag)
end
subroutine s(f)
  logical f
  if (f) then
    write 1
  endif
end
"""
        result = analyze(source)
        transformed = result.transformed_source()
        assert "if (.true.)" in transformed

    def test_idempotent_on_no_constants(self):
        source = "program main\nread n\nwrite n\nend\n"
        result = analyze(source)
        assert result.transformed_source() == source
