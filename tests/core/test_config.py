"""Tests for configuration handling."""

import pytest

from repro.core.config import (
    TABLE2_CONFIGS,
    TABLE3_CONFIGS,
    AnalysisConfig,
    JumpFunctionKind,
)


class TestJumpFunctionKind:
    def test_four_kinds(self):
        assert len(JumpFunctionKind) == 4

    def test_propagation_depth_property(self):
        # §3.1: only pass-through and polynomial cross procedure bodies
        assert not JumpFunctionKind.LITERAL.propagates_through_bodies
        assert not JumpFunctionKind.INTRAPROCEDURAL.propagates_through_bodies
        assert JumpFunctionKind.PASS_THROUGH.propagates_through_bodies
        assert JumpFunctionKind.POLYNOMIAL.propagates_through_bodies

    def test_values_match_cli_choices(self):
        assert {k.value for k in JumpFunctionKind} == {
            "literal",
            "intraprocedural",
            "pass_through",
            "polynomial",
        }


class TestAnalysisConfig:
    def test_defaults_match_the_papers_recommendation(self):
        config = AnalysisConfig()
        # the paper recommends pass-through with MOD and return functions
        assert config.jump_function is JumpFunctionKind.PASS_THROUGH
        assert config.use_return_jump_functions
        assert config.use_mod
        assert not config.complete
        assert not config.intraprocedural_only

    def test_frozen(self):
        config = AnalysisConfig()
        with pytest.raises(AttributeError):
            config.use_mod = False  # type: ignore[misc]

    def test_describe_mentions_every_flag(self):
        config = AnalysisConfig(
            jump_function=JumpFunctionKind.POLYNOMIAL,
            use_return_jump_functions=False,
            use_mod=False,
            complete=True,
            compose_return_functions=True,
        )
        text = config.describe()
        for token in ("polynomial", "no-rjf", "no-mod", "complete", "composed"):
            assert token in text

    def test_hashable(self):
        assert len({AnalysisConfig(), AnalysisConfig()}) == 1


class TestTableConfigs:
    def test_table2_columns(self):
        assert list(TABLE2_CONFIGS) == [
            "polynomial",
            "pass_through",
            "intraprocedural",
            "literal",
            "polynomial_no_rjf",
            "pass_through_no_rjf",
        ]
        assert not TABLE2_CONFIGS["polynomial_no_rjf"].use_return_jump_functions

    def test_table3_columns(self):
        assert list(TABLE3_CONFIGS) == [
            "polynomial_no_mod",
            "polynomial_with_mod",
            "complete",
            "intraprocedural_only",
        ]
        assert not TABLE3_CONFIGS["polynomial_no_mod"].use_mod
        assert TABLE3_CONFIGS["complete"].complete
        assert TABLE3_CONFIGS["intraprocedural_only"].intraprocedural_only

    def test_columns_distinct_within_each_table(self):
        assert len(set(TABLE2_CONFIGS.values())) == len(TABLE2_CONFIGS)
        assert len(set(TABLE3_CONFIGS.values())) == len(TABLE3_CONFIGS)

    def test_tables_share_the_polynomial_baseline(self):
        # Table 3 column 2 "is identical with the first column in Table 2"
        assert (
            TABLE2_CONFIGS["polynomial"]
            == TABLE3_CONFIGS["polynomial_with_mod"]
        )
