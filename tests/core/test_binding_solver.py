"""The binding-graph solver must agree exactly with the worklist solver."""

import pytest

from repro.analysis.ssa import ensure_global_symbols
from repro.callgraph import build_call_graph, compute_modref
from repro.core.binding_solver import solve_binding_graph
from repro.core.builder import build_forward_jump_functions
from repro.core.config import AnalysisConfig, JumpFunctionKind
from repro.core.returns import build_return_jump_functions
from repro.core.solver import solve
from repro.frontend import parse_program
from repro.ir import lower_program
from repro.workloads import load, suite_names


def both_solvers(source, config=None):
    config = config or AnalysisConfig()
    program = parse_program(source)
    lowered = lower_program(program)
    ensure_global_symbols(lowered)
    graph = build_call_graph(lowered)
    modref = compute_modref(lowered, graph)
    returns = build_return_jump_functions(lowered, graph, modref, config)
    forward = build_forward_jump_functions(lowered, modref, returns, config)
    return (
        solve(lowered, graph, forward),
        solve_binding_graph(lowered, graph, forward),
    )


def assert_same_val(a, b):
    assert a.reached == b.reached
    assert set(a.val) == set(b.val)
    for proc in a.val:
        assert a.val[proc] == b.val[proc], proc


SIMPLE = """
program main
  integer n
  common /c/ g
  integer g
  g = 100
  n = 10
  call work(n)
  call work(n)
  call other(n + 1)
end
subroutine work(k)
  integer k
  common /c/ lim
  integer lim
  write k + lim
end
subroutine other(j)
  integer j
  call work(j)
end
"""


class TestAgreement:
    def test_simple_program(self):
        assert_same_val(*both_solvers(SIMPLE))

    def test_conflicting_sites(self):
        source = """
program main
  call s(1)
  call s(2)
end
subroutine s(a)
  integer a
  write a
end
"""
        worklist, binding = both_solvers(source)
        assert_same_val(worklist, binding)
        from repro.core.lattice import BOTTOM

        assert binding.val["s"]["a"] is BOTTOM

    def test_unreached_procedure_stays_top(self):
        source = SIMPLE + "\nsubroutine orphan(z)\ninteger z\nwrite z\nend\n"
        worklist, binding = both_solvers(source)
        assert_same_val(worklist, binding)
        from repro.core.lattice import TOP

        assert binding.val["orphan"]["z"] is TOP

    def test_recursion(self):
        source = """
program main
  call rec(5, 1)
end
subroutine rec(n, fixed)
  integer n, fixed
  if (n > 0) then
    call rec(n - 1, fixed)
  endif
  write fixed
end
"""
        worklist, binding = both_solvers(source)
        assert_same_val(worklist, binding)
        assert binding.val["rec"]["fixed"] == 1

    @pytest.mark.parametrize(
        "kind",
        [JumpFunctionKind.LITERAL, JumpFunctionKind.PASS_THROUGH,
         JumpFunctionKind.POLYNOMIAL],
    )
    def test_agreement_per_jump_function(self, kind):
        config = AnalysisConfig(jump_function=kind)
        assert_same_val(*both_solvers(SIMPLE, config))

    @pytest.mark.parametrize("name", suite_names())
    def test_agreement_on_suite(self, name):
        workload = load(name, scale=0.3)
        assert_same_val(*both_solvers(workload.source))

    def test_agreement_without_mod(self):
        config = AnalysisConfig(use_mod=False)
        assert_same_val(*both_solvers(load("mdg", scale=0.5).source, config))
