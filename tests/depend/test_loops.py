"""Tests for loop parallelizability classification."""

import pytest

from repro import analyze
from repro.depend import classify_loops


def verdicts_of(source, constants_env=True):
    result = analyze(source)
    return classify_loops(result, constants_env=constants_env)


def main_src(body_lines, extra=""):
    return "program t\n" + "\n".join(body_lines) + "\nend\n" + extra


class TestParallelizable:
    def test_independent_elementwise_loop(self):
        verdicts = verdicts_of(
            main_src(
                ["integer a(10)", "do i = 1, 10", "a(i) = i", "enddo"]
            )
        )
        (loop,) = verdicts
        assert loop.parallelizable
        assert loop.trip_count == 10
        assert loop.profitable

    def test_reduction_allowed(self):
        verdicts = verdicts_of(
            main_src(
                ["m = 0", "do i = 1, 8", "m = m + i", "enddo"]
            )
        )
        assert verdicts[0].parallelizable

    def test_private_scalar_allowed(self):
        verdicts = verdicts_of(
            main_src(
                ["integer a(10)", "do i = 1, 10", "k = i * 2", "a(i) = k",
                 "enddo"]
            )
        )
        assert verdicts[0].parallelizable


class TestSerializing:
    def test_loop_carried_array_dependence(self):
        verdicts = verdicts_of(
            main_src(
                ["integer a(11)", "a(1) = 0", "do i = 1, 10",
                 "a(i + 1) = a(i)", "enddo"]
            )
        )
        (loop,) = verdicts
        assert not loop.parallelizable
        assert any("dependence" in reason for reason in loop.reasons)

    def test_same_iteration_access_fine(self):
        verdicts = verdicts_of(
            main_src(
                ["integer a(10)", "do i = 1, 10", "a(i) = a(i) + 1", "enddo"]
            )
        )
        assert verdicts[0].parallelizable

    def test_carried_scalar(self):
        verdicts = verdicts_of(
            main_src(
                ["m = 0", "do i = 1, 10", "k = m", "m = i + k + 1", "enddo"]
            )
        )
        assert not verdicts[0].parallelizable

    def test_call_in_body_vetoes(self):
        source = main_src(
            ["do i = 1, 10", "call f(i)", "enddo"],
            "subroutine f(x)\ninteger x\nwrite x\nend\n",
        )
        verdicts = verdicts_of(source)
        assert not verdicts[0].parallelizable
        assert any("call" in reason for reason in verdicts[0].reasons)

    def test_strided_writes_disambiguated_by_gcd(self):
        # writes to even elements, reads odd: gcd refutes the dependence
        verdicts = verdicts_of(
            main_src(
                ["integer a(21)", "a(1) = 0",
                 "do i = 1, 10", "a(2 * i) = a(2 * i + 1)", "enddo"]
            )
        )
        assert verdicts[0].parallelizable


class TestInterproceduralEffect:
    SOURCE = """
program main
  call kernel(16)
end
subroutine kernel(n)
  integer n, i
  integer a(100)
  do i = 1, n
    a(i) = i
  enddo
end
"""

    def test_trip_count_needs_constants(self):
        with_constants = verdicts_of(self.SOURCE, constants_env=True)
        without = verdicts_of(self.SOURCE, constants_env=False)
        assert with_constants[0].trip_count == 16
        assert without[0].trip_count is None

    def test_profitability_flips(self):
        with_constants = verdicts_of(self.SOURCE, constants_env=True)
        without = verdicts_of(self.SOURCE, constants_env=False)
        assert with_constants[0].profitable
        assert not without[0].profitable

    def test_stride_disambiguation_needs_constants(self):
        source = """
program main
  call pack(2)
end
subroutine pack(stride)
  integer stride, i
  integer a(40)
  a(1) = 0
  do i = 1, 10
    a(stride * i) = a(stride * i + 1)
  enddo
end
"""
        with_constants = verdicts_of(source, constants_env=True)
        without = verdicts_of(source, constants_env=False)
        assert with_constants[0].parallelizable  # gcd(2,2) ∤ 1
        assert not without[0].parallelizable  # nonlinear subscripts

    def test_depth_recorded(self):
        verdicts = verdicts_of(
            main_src(
                ["integer a(5,5)",
                 "do i = 1, 5", "do j = 1, 5", "a(i, j) = 0", "enddo", "enddo"]
            )
        )
        depths = {(v.induction_var, v.depth) for v in verdicts}
        assert depths == {("i", 0), ("j", 1)}
