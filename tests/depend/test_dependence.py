"""Tests for the GCD and bounds dependence tests."""

from repro.depend.dependence import (
    DependenceResult,
    LoopRange,
    bounds_test,
    gcd_test,
    may_depend,
)
from repro.depend.subscripts import AffineSubscript


def affine(constant, **coefficients):
    return AffineSubscript(
        constant, tuple(sorted(coefficients.items()))
    )


class TestGCDTest:
    def test_same_form_maybe(self):
        a = affine(0, i=1)
        assert gcd_test(a, a) is DependenceResult.MAYBE

    def test_gcd_refutes(self):
        # 2i and 2i'+1: even vs odd — never equal
        assert (
            gcd_test(affine(0, i=2), affine(1, i=2))
            is DependenceResult.INDEPENDENT
        )

    def test_gcd_allows_when_divisible(self):
        assert (
            gcd_test(affine(0, i=2), affine(4, i=2)) is DependenceResult.MAYBE
        )

    def test_invariant_pair_equal(self):
        assert gcd_test(affine(5), affine(5)) is DependenceResult.MAYBE

    def test_invariant_pair_unequal(self):
        assert gcd_test(affine(5), affine(6)) is DependenceResult.INDEPENDENT

    def test_mixed_coefficients(self):
        # 3i = 6j + 2: gcd(3,6)=3 does not divide 2
        assert (
            gcd_test(affine(0, i=3), affine(2, j=6))
            is DependenceResult.INDEPENDENT
        )


class TestBoundsTest:
    RANGES = {"i": LoopRange("i", 1, 10)}

    def test_disjoint_ranges_refuted(self):
        # i vs i + 100 over 1..10: difference always negative
        assert (
            bounds_test(affine(0, i=1), affine(100, i=1), self.RANGES)
            is DependenceResult.INDEPENDENT
        )

    def test_overlapping_ranges_maybe(self):
        assert (
            bounds_test(affine(0, i=1), affine(3, i=1), self.RANGES)
            is DependenceResult.MAYBE
        )

    def test_unknown_range_maybe(self):
        assert (
            bounds_test(affine(0, i=1), affine(100, i=1), {})
            is DependenceResult.MAYBE
        )

    def test_negative_coefficient(self):
        # -i over 1..10 is -10..-1; vs constant 5: never equal
        assert (
            bounds_test(affine(0, i=-1), affine(5), self.RANGES)
            is DependenceResult.INDEPENDENT
        )

    def test_constant_vs_inside_range(self):
        assert (
            bounds_test(affine(0, i=1), affine(5), self.RANGES)
            is DependenceResult.MAYBE
        )


class TestMayDepend:
    def test_nonlinear_is_maybe(self):
        assert may_depend(None, affine(0, i=1)) is DependenceResult.MAYBE
        assert may_depend(affine(0, i=1), None) is DependenceResult.MAYBE

    def test_gcd_then_bounds(self):
        ranges = {"i": LoopRange("i", 1, 10)}
        # gcd passes (both odd strides), bounds refutes (offset 100)
        assert (
            may_depend(affine(0, i=1), affine(100, i=1), ranges)
            is DependenceResult.INDEPENDENT
        )

    def test_no_ranges_falls_back_to_maybe(self):
        assert (
            may_depend(affine(0, i=1), affine(1, i=1))
            is DependenceResult.MAYBE
        )
