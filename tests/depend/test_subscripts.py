"""Tests for affine-form extraction and subscript classification."""

import pytest

from repro import analyze
from repro.depend import classify_subscripts, extract_affine
from repro.depend.subscripts import AffineSubscript
from repro.frontend import parse_program
from repro.frontend.parser import parse_source


def affine_of(text, induction=("i", "j"), known=None, decls=""):
    source = f"program p\n{decls}\nzz = {text}\nend\n"
    program = parse_program(source)
    procedure = program.procedure("p")
    expr = procedure.ast.body[-1].value
    return extract_affine(expr, set(induction), known or {}, procedure)


class TestExtraction:
    def test_literal(self):
        assert affine_of("7") == AffineSubscript(7)

    def test_induction_variable(self):
        assert affine_of("i") == AffineSubscript(0, (("i", 1),))

    def test_affine_combination(self):
        affine = affine_of("3 * i + 2 * j - 5")
        assert affine.constant == -5
        assert affine.coefficient("i") == 3
        assert affine.coefficient("j") == 2

    def test_negation(self):
        affine = affine_of("-i + 4")
        assert affine.coefficient("i") == -1
        assert affine.constant == 4

    def test_named_constant_coefficient(self):
        affine = affine_of("k * i", decls="parameter (k = 6)")
        assert affine.coefficient("i") == 6

    def test_known_env_coefficient(self):
        affine = affine_of("n * i + 1", known={"n": 8})
        assert affine == AffineSubscript(1, (("i", 8),))

    def test_unknown_variable_is_nonlinear(self):
        assert affine_of("n * i + 1") is None

    def test_product_of_inductions_is_nonlinear(self):
        assert affine_of("i * j") is None

    def test_constant_division_folds(self):
        assert affine_of("10 / 4") == AffineSubscript(2)

    def test_division_by_induction_nonlinear(self):
        assert affine_of("10 / i") is None

    def test_intrinsic_of_constants_folds(self):
        assert affine_of("max(3, 5)") == AffineSubscript(5)

    def test_intrinsic_of_induction_nonlinear(self):
        assert affine_of("max(i, 3)") is None

    def test_cancelling_terms(self):
        affine = affine_of("i - i + 2")
        assert affine == AffineSubscript(2)

    def test_bool_env_values_ignored(self):
        assert affine_of("n + 1", known={"n": True}) is None


SHEN = """
program main
  call kernel(4, 10)
end
subroutine kernel(stride, n)
  integer stride, n, i
  integer a(100)
  do i = 1, n
    a(stride * i) = i
    a(i + 1) = i
  enddo
end
"""


class TestClassification:
    def test_counts(self):
        result = analyze(SHEN)
        before = classify_subscripts(result, constants_env=False)
        after = classify_subscripts(result, constants_env=True)
        assert before.total == after.total == 2
        assert before.nonlinear == 1  # stride*i
        assert after.nonlinear == 0  # stride known = 4

    def test_nonlinear_sites_identified(self):
        result = analyze(SHEN)
        before = classify_subscripts(result, constants_env=False)
        (site,) = before.nonlinear_sites()
        assert site.array == "a"
        assert site.loop_nest == ("i",)

    def test_subscripts_in_reads_and_conditions_found(self):
        source = """
program p
  integer a(10), n
  n = 2
  if (a(n) > 0) then
    write a(n + 1)
  endif
  read a(3)
end
"""
        result = analyze(source)
        report = classify_subscripts(result)
        assert report.total == 3

    def test_nested_loop_nest_tracked(self):
        source = """
program p
  integer a(10, 10), i, j
  do i = 1, 10
    do j = 1, 10
      a(i, j) = 0
    enddo
  enddo
end
"""
        result = analyze(source)
        report = classify_subscripts(result)
        assert all(s.loop_nest == ("i", "j") for s in report.sites)
        assert report.linear == 2
