"""Differential soundness: every claimed constant must match execution.

The strongest validation in the project: the reference interpreter records
the actual entry values of every formal and global on every invocation,
and every CONSTANTS(p) claim from every analyzer configuration is checked
against every recorded snapshot (see DESIGN.md §5).
"""

import pytest

from repro import Analyzer, AnalysisConfig, JumpFunctionKind
from repro.interp import check_soundness, run_program
from repro.workloads import load, suite_names

SCALE = 0.4

CONFIGS = {
    "polynomial": AnalysisConfig(JumpFunctionKind.POLYNOMIAL),
    "pass_through": AnalysisConfig(JumpFunctionKind.PASS_THROUGH),
    "intraprocedural": AnalysisConfig(JumpFunctionKind.INTRAPROCEDURAL),
    "literal": AnalysisConfig(JumpFunctionKind.LITERAL),
    "no_rjf": AnalysisConfig(
        JumpFunctionKind.POLYNOMIAL, use_return_jump_functions=False
    ),
    "no_mod": AnalysisConfig(JumpFunctionKind.POLYNOMIAL, use_mod=False),
    "composed": AnalysisConfig(
        JumpFunctionKind.POLYNOMIAL, compose_return_functions=True
    ),
}


@pytest.fixture(scope="module")
def traces():
    found = {}
    for name in suite_names():
        workload = load(name, scale=SCALE)
        found[name] = run_program(
            workload.source, inputs=workload.inputs, max_steps=5_000_000
        )
    return found


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize("name", suite_names())
def test_constants_sound_on_suite(traces, name, config_name):
    workload = load(name, scale=SCALE)
    result = Analyzer(workload.source).run(CONFIGS[config_name])
    violations = check_soundness(result, traces[name])
    assert violations == [], "\n".join(str(v) for v in violations)


@pytest.mark.parametrize("name", suite_names())
def test_complete_mode_sound(traces, name):
    """Complete propagation folds branches — its claims must still hold
    on the *original* program's executions."""
    workload = load(name, scale=SCALE)
    config = AnalysisConfig(JumpFunctionKind.POLYNOMIAL, complete=True)
    result = Analyzer(workload.source).run(config)
    violations = check_soundness(result, traces[name])
    assert violations == [], "\n".join(str(v) for v in violations)


def test_soundness_checker_catches_lies():
    """Sanity-check the oracle itself: corrupt a VAL set and make sure a
    violation is reported."""
    source = """
program t
  call s(3)
end
subroutine s(a)
  integer a
  write a
end
"""
    from repro import analyze

    result = analyze(source)
    trace = run_program(source)
    assert check_soundness(result, trace) == []
    result.solved.val["s"]["a"] = 99  # inject a wrong claim
    violations = check_soundness(result, trace)
    assert len(violations) == 1
    assert violations[0].claimed == 99
    assert violations[0].observed == 3
