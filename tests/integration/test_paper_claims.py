"""The paper's empirical claims, asserted over the whole workload suite.

These are the reproduction targets from DESIGN.md §3 — orderings and
qualitative effects, not absolute numbers. The suite runs at a reduced
scale here to keep test time reasonable; the benchmarks regenerate the
full-scale tables.
"""

import pytest

from repro import Analyzer
from repro.core.config import (
    TABLE2_CONFIGS,
    TABLE3_CONFIGS,
    AnalysisConfig,
    JumpFunctionKind,
)
from repro.workloads import load, suite_names

pytestmark = pytest.mark.slow  # whole-suite sweep: seconds, not millis

SCALE = 0.4


@pytest.fixture(scope="module")
def sweeps():
    """All Table 2 + Table 3 configurations for every (scaled) program."""
    results = {}
    for name in suite_names():
        workload = load(name, scale=SCALE)
        analyzer = Analyzer(workload.source)
        results[name] = analyzer.sweep({**TABLE2_CONFIGS, **TABLE3_CONFIGS})
    return results


def counts(sweeps, name):
    return {config: r.constants_found for config, r in sweeps[name].items()}


class TestClaim1JumpFunctionOrdering:
    """constants(literal) ⊆ ... ⊆ constants(pass-through) = constants(poly)."""

    @pytest.mark.parametrize("name", suite_names())
    def test_counts_ordered(self, sweeps, name):
        c = counts(sweeps, name)
        assert c["literal"] <= c["intraprocedural"]
        assert c["intraprocedural"] <= c["pass_through"]
        assert c["pass_through"] <= c["polynomial"]

    @pytest.mark.parametrize("name", suite_names())
    def test_pass_through_equals_polynomial(self, sweeps, name):
        """The paper's headline: the two are equivalent in practice."""
        c = counts(sweeps, name)
        assert c["pass_through"] == c["polynomial"]

    @pytest.mark.parametrize("name", suite_names())
    def test_constants_sets_nest(self, sweeps, name):
        weak = sweeps[name]["literal"]
        strong = sweeps[name]["polynomial"]
        for proc in weak.lowered.procedures:
            for key, value in weak.constants(proc).items():
                assert strong.constants(proc).get(key) == value


class TestClaim2ReturnJumpFunctions:
    @pytest.mark.parametrize("name", suite_names())
    def test_return_functions_never_hurt(self, sweeps, name):
        c = counts(sweeps, name)
        assert c["polynomial_no_rjf"] <= c["polynomial"]
        assert c["pass_through_no_rjf"] <= c["pass_through"]

    def test_ocean_collapses_without_return_functions(self, sweeps):
        """The paper's ocean row: >3x from return jump functions; we
        require at least a 1.8x effect at reduced scale."""
        c = counts(sweeps, "ocean")
        assert c["polynomial"] >= 1.8 * c["polynomial_no_rjf"]

    def test_most_programs_barely_move(self, sweeps):
        small_movers = 0
        for name in suite_names():
            c = counts(sweeps, name)
            if c["polynomial"] - c["polynomial_no_rjf"] <= max(
                3, 0.1 * c["polynomial"]
            ):
                small_movers += 1
        assert small_movers >= 9  # "no noticeable difference in ten of 13"


class TestClaim3ModInformation:
    @pytest.mark.parametrize("name", suite_names())
    def test_mod_never_hurts(self, sweeps, name):
        c = counts(sweeps, name)
        assert c["polynomial_no_mod"] <= c["polynomial_with_mod"]

    def test_mod_sensitive_programs_collapse(self, sweeps):
        """adm / linpackd / ocean / simple lose most constants without MOD."""
        for name in ("adm", "linpackd", "ocean", "simple"):
            c = counts(sweeps, name)
            assert c["polynomial_no_mod"] <= 0.6 * c["polynomial_with_mod"], name

    def test_doduc_and_qcd_barely_move(self, sweeps):
        for name in ("doduc", "qcd"):
            c = counts(sweeps, name)
            assert c["polynomial_no_mod"] >= 0.9 * c["polynomial_with_mod"], name


class TestClaim4CompletePropagation:
    @pytest.mark.parametrize("name", suite_names())
    def test_complete_never_loses_pairs(self, sweeps, name):
        c = counts(sweeps, name)
        assert c["complete"] >= c["polynomial_with_mod"]

    def test_gains_only_on_ocean_and_spec77(self, sweeps):
        gainers = {
            name
            for name in suite_names()
            if counts(sweeps, name)["complete"]
            > counts(sweeps, name)["polynomial_with_mod"]
        }
        assert gainers == {"ocean", "spec77"}

    @pytest.mark.parametrize("name", ("ocean", "spec77"))
    def test_one_dce_pass_suffices(self, sweeps, name):
        """'In each case, only one pass of dead code elimination was
        needed' (§4.2)."""
        stats = sweeps[name]["complete"].complete_stats
        assert stats is not None
        assert stats.dce_rounds_with_changes == 1


class TestClaim5InterproceduralWins:
    @pytest.mark.parametrize("name", suite_names())
    def test_icp_at_least_intraprocedural(self, sweeps, name):
        c = counts(sweeps, name)
        assert c["intraprocedural_only"] <= c["polynomial_with_mod"]

    def test_doduc_nearly_invisible_intraprocedurally(self, sweeps):
        c = counts(sweeps, "doduc")
        assert c["intraprocedural_only"] <= 0.15 * c["polynomial_with_mod"]

    def test_adm_mostly_visible_intraprocedurally(self, sweeps):
        c = counts(sweeps, "adm")
        assert c["intraprocedural_only"] >= 0.8 * c["polynomial_with_mod"]
