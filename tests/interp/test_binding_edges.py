"""Call-by-reference binding edge cases in the interpreter."""

import pytest

from repro.interp import InterpError, run_program


def outputs_of(source, inputs=None):
    return run_program(source, inputs=inputs).outputs


class TestFunctionSideEffects:
    def test_function_modifies_by_ref_argument(self):
        source = """
program t
  integer n, r
  n = 10
  r = bump(n)
  write r, n
end
integer function bump(x)
  integer x
  x = x + 1
  bump = x * 100
end
"""
        assert outputs_of(source) == [1100, 11]

    def test_function_call_in_expression_side_effect_ordering(self):
        source = """
program t
  integer n
  n = 1
  m = bump(n) + n
  write m
end
integer function bump(x)
  integer x
  x = x + 1
  bump = 0
end
"""
        # operands evaluate left to right: bump(n)=0 runs first, then n=2
        assert outputs_of(source) == [2]


class TestAliasing:
    def test_same_variable_passed_twice(self):
        source = """
program t
  integer n
  n = 3
  call s(n, n)
  write n
end
subroutine s(a, b)
  integer a, b
  a = a + 1
  b = b * 10
end
"""
        # a and b share storage: (3+1)*10
        assert outputs_of(source) == [40]

    def test_global_passed_as_argument(self):
        source = """
program t
  common /c/ g
  integer g
  g = 5
  call s(g)
  write g
end
subroutine s(a)
  integer a
  a = a + 1
end
"""
        assert outputs_of(source) == [6]

    def test_array_element_aliases_array(self):
        source = """
program t
  integer v(3)
  v(2) = 7
  call s(v(2), v)
  write v(2)
end
subroutine s(e, w)
  integer e, w(3)
  e = e + 1
  w(2) = w(2) * 10
end
"""
        # e is a view into v(2): (7+1)*10
        assert outputs_of(source) == [80]


class TestArrayPassing:
    def test_array_shared_not_copied(self):
        source = """
program t
  integer v(4)
  integer i
  do i = 1, 4
    v(i) = 0
  enddo
  call fill(v)
  write v(1), v(4)
end
subroutine fill(w)
  integer w(4), i
  do i = 1, 4
    w(i) = i
  enddo
end
"""
        assert outputs_of(source) == [1, 4]

    def test_common_array_shared(self):
        source = """
program t
  common /c/ v
  integer v(3)
  v(1) = 1
  call s
  write v(1)
end
subroutine s
  common /c/ w
  integer w(3)
  w(1) = w(1) + 41
end
"""
        assert outputs_of(source) == [42]

    def test_wrong_dimension_count_at_runtime(self):
        source = """
program t
  integer v(2, 2)
  v(1, 1) = 1
  write v(1, 1)
end
"""
        assert outputs_of(source) == [1]


class TestMixedTypes:
    def test_real_argument_passed_to_real_formal(self):
        source = """
program t
  real x
  x = 1.5
  call s(x)
  write x
end
subroutine s(y)
  real y
  y = y * 2.0
end
"""
        assert outputs_of(source) == [3.0]

    def test_integer_stored_to_real_array(self):
        source = """
program t
  real v(2)
  v(1) = 3
  write v(1)
end
"""
        assert outputs_of(source) == [3.0]

    def test_write_string_literal(self):
        assert outputs_of("program t\nwrite 'done', 1\nend\n") == ["done", 1]
