"""Unit tests for the reference interpreter."""

import pytest

from repro.interp import InterpError, run_program


def outputs_of(source, inputs=None):
    return run_program(source, inputs=inputs).outputs


def main_src(body_lines, extra=""):
    return "program t\n" + "\n".join(body_lines) + "\nend\n" + extra


class TestArithmetic:
    def test_integer_arithmetic(self):
        assert outputs_of(main_src(["write 2 + 3 * 4"])) == [14]

    def test_fortran_division_truncates_toward_zero(self):
        assert outputs_of(main_src(["n = -7", "write n / 2"])) == [-3]

    def test_mod_sign_follows_dividend(self):
        assert outputs_of(main_src(["write mod(-7, 3)"])) == [-1]

    def test_power(self):
        assert outputs_of(main_src(["write 2 ** 10"])) == [1024]

    def test_intrinsics(self):
        out = outputs_of(
            main_src(["write max(3, 9), min(3, 9), abs(-4), isign(5, -1)"])
        )
        assert out == [9, 3, 4, -5]

    def test_real_arithmetic(self):
        out = outputs_of(main_src(["x = 1.5", "y = x * 2.0", "write y"]))
        assert out == [3.0]

    def test_mixed_assignment_truncates(self):
        assert outputs_of(main_src(["n = 2.9", "write n"])) == [2]

    def test_division_by_zero_raises(self):
        with pytest.raises(InterpError, match="zero"):
            outputs_of(main_src(["n = 0", "write 1 / n"]))

    def test_logical_ops(self):
        out = outputs_of(
            main_src(
                ["logical a", "a = 1 > 0 .and. .not. (2 > 3)", "write a"]
            )
        )
        assert out == [True]


class TestControlFlow:
    def test_if_else(self):
        src = main_src(
            ["n = 5", "if (n > 3) then", "write 1", "else", "write 2", "endif"]
        )
        assert outputs_of(src) == [1]

    def test_elseif_chain(self):
        src = main_src(
            [
                "n = 2",
                "if (n == 1) then",
                "write 10",
                "elseif (n == 2) then",
                "write 20",
                "else",
                "write 30",
                "endif",
            ]
        )
        assert outputs_of(src) == [20]

    def test_do_loop_sum(self):
        src = main_src(
            ["m = 0", "do i = 1, 5", "m = m + i", "enddo", "write m"]
        )
        assert outputs_of(src) == [15]

    def test_do_loop_with_step(self):
        src = main_src(
            ["m = 0", "do i = 1, 10, 3", "m = m + 1", "enddo", "write m, i"]
        )
        # iterations at 1,4,7,10; i ends at 13 (trip-count semantics)
        assert outputs_of(src) == [4, 13]

    def test_do_loop_negative_step(self):
        src = main_src(
            ["m = 0", "do i = 5, 1, -1", "m = m * 10 + i", "enddo", "write m"]
        )
        assert outputs_of(src) == [54321]

    def test_zero_trip_loop(self):
        src = main_src(["m = 7", "do i = 5, 1", "m = 0", "enddo", "write m"])
        assert outputs_of(src) == [7]

    def test_do_while(self):
        src = main_src(
            ["n = 1", "do while (n < 100)", "n = n * 2", "enddo", "write n"]
        )
        assert outputs_of(src) == [128]

    def test_goto_loop(self):
        src = main_src(
            ["n = 0", "10 n = n + 1", "if (n < 4) goto 10", "write n"]
        )
        assert outputs_of(src) == [4]

    def test_stop_halts(self):
        src = main_src(["write 1", "stop", "write 2"])
        trace = run_program(src)
        assert trace.outputs == [1]
        assert trace.stopped

    def test_step_limit(self):
        src = main_src(["n = 0", "do while (n >= 0)", "n = 0", "enddo"])
        with pytest.raises(InterpError, match="step limit"):
            run_program(src, max_steps=1000)


class TestCallsAndReferences:
    def test_by_reference_modification(self):
        src = main_src(
            ["n = 1", "call bump(n)", "write n"],
            "subroutine bump(x)\ninteger x\nx = x + 41\nend\n",
        )
        assert outputs_of(src) == [42]

    def test_expression_actual_writes_lost(self):
        src = main_src(
            ["n = 1", "call bump(n + 0)", "write n"],
            "subroutine bump(x)\ninteger x\nx = 99\nend\n",
        )
        assert outputs_of(src) == [1]

    def test_function_call(self):
        src = main_src(
            ["write twice(21)"],
            "integer function twice(x)\ninteger x\ntwice = x * 2\nend\n",
        )
        assert outputs_of(src) == [42]

    def test_recursion(self):
        src = main_src(
            ["write fact(5)"],
            (
                "integer function fact(n)\ninteger n\n"
                "if (n <= 1) then\nfact = 1\nelse\nfact = n * fact(n - 1)\n"
                "endif\nend\n"
            ),
        )
        assert outputs_of(src) == [120]

    def test_array_element_by_reference(self):
        src = main_src(
            ["integer v(3)", "v(2) = 5", "call bump(v(2))", "write v(2)"],
            "subroutine bump(x)\ninteger x\nx = x + 1\nend\n",
        )
        assert outputs_of(src) == [6]

    def test_whole_array_passed(self):
        src = main_src(
            ["integer v(3)", "call fill(v)", "write v(1), v(3)"],
            (
                "subroutine fill(w)\ninteger w(3)\ninteger i\n"
                "do i = 1, 3\nw(i) = i * 10\nenddo\nend\n"
            ),
        )
        assert outputs_of(src) == [10, 30]


class TestGlobals:
    def test_common_shared(self):
        src = """
program t
  common /c/ g
  integer g
  g = 5
  call bump
  write g
end
subroutine bump
  common /c/ h
  integer h
  h = h + 1
end
"""
        assert outputs_of(src) == [6]

    def test_data_initialization(self):
        src = """
program t
  common /c/ g
  integer g
  data g /42/
  write g
end
"""
        assert outputs_of(src) == [42]

    def test_saved_local_persists(self):
        src = main_src(
            ["call count", "call count", "call count"],
            (
                "subroutine count\ninteger n\ndata n /0/\n"
                "n = n + 1\nwrite n\nend\n"
            ),
        )
        assert outputs_of(src) == [1, 2, 3]


class TestUndefinedAndErrors:
    def test_undefined_scalar_raises(self):
        with pytest.raises(InterpError, match="undefined"):
            outputs_of(main_src(["write n"]))

    def test_undefined_array_element_raises(self):
        with pytest.raises(InterpError, match="undefined"):
            outputs_of(main_src(["integer v(3)", "write v(1)"]))

    def test_subscript_out_of_bounds(self):
        with pytest.raises(InterpError, match="out of bounds"):
            outputs_of(main_src(["integer v(3)", "v(4) = 1"]))

    def test_input_exhausted(self):
        with pytest.raises(InterpError, match="exhausted"):
            outputs_of(main_src(["read n"]))

    def test_read_consumes_inputs(self):
        src = main_src(["read n, m", "write n + m"])
        assert outputs_of(src, inputs=[4, 5]) == [9]


class TestTracing:
    SRC = main_src(
        ["n = 3", "call s(n)", "call s(n)"],
        "subroutine s(a)\ninteger a\nwrite a\nend\n",
    )

    def test_invocations_recorded(self):
        trace = run_program(self.SRC)
        assert len(trace.invocations("s")) == 2
        assert trace.invocations("s")[0]["a"] == 3

    def test_undeclared_globals_in_snapshot(self):
        src = """
program t
  common /c/ g
  integer g
  g = 9
  call middle
end
subroutine middle
  call leaf
end
subroutine leaf
  common /c/ h
  integer h
  write h
end
"""
        trace = run_program(src)
        snapshot = trace.invocations("middle")[0]
        from repro.frontend.symbols import GlobalId

        assert snapshot[GlobalId("c", 0)] == 9

    def test_steps_counted(self):
        trace = run_program(self.SRC)
        assert trace.steps > 0
