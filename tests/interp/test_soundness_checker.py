"""Edge cases for the soundness checker itself."""

import pytest

from repro import analyze
from repro.interp import check_soundness, run_program
from repro.interp.soundness import SoundnessViolation


SOURCE = """
program main
  integer n
  logical flag
  n = 1
  flag = .true.
  call s(n, flag)
end
subroutine s(a, f)
  integer a
  logical f
  write a
end
"""


class TestVacuousCases:
    def test_never_called_procedure_is_vacuously_sound(self):
        source = SOURCE + "subroutine orphan(z)\ninteger z\nwrite z\nend\n"
        result = analyze(source)
        trace = run_program(source)
        assert check_soundness(result, trace) == []

    def test_unrecorded_key_skipped(self):
        result = analyze(SOURCE)
        trace = run_program(SOURCE)
        # drop 'a' from every recorded snapshot: claims about it become
        # unverifiable, not violations
        for snapshot in trace.invocations("s"):
            snapshot.pop("a", None)
        assert check_soundness(result, trace) == []

    def test_empty_trace_sound(self):
        from repro.interp.interpreter import ExecutionTrace

        result = analyze(SOURCE)
        assert check_soundness(result, ExecutionTrace()) == []


class TestTypeStrictness:
    def test_bool_int_confusion_is_a_violation(self):
        result = analyze(SOURCE)
        trace = run_program(SOURCE)
        # claim f = 1 (integer) while execution observed True (logical)
        result.solved.val["s"]["f"] = 1
        violations = check_soundness(result, trace)
        assert len(violations) == 1
        assert violations[0].key == "f"

    def test_matching_bool_claim_is_sound(self):
        result = analyze(SOURCE)
        trace = run_program(SOURCE)
        assert result.solved.val["s"]["f"] is True
        assert check_soundness(result, trace) == []


class TestViolationReporting:
    def test_violation_fields_and_str(self):
        result = analyze(SOURCE)
        trace = run_program(SOURCE)
        result.solved.val["s"]["a"] = 99
        (violation,) = check_soundness(result, trace)
        assert isinstance(violation, SoundnessViolation)
        assert violation.procedure == "s"
        assert violation.claimed == 99
        assert violation.observed == 1
        assert violation.invocation == 0
        text = str(violation)
        assert "99" in text and "s" in text

    def test_every_invocation_checked(self):
        source = """
program main
  call s(1)
  call s(1)
  call s(1)
end
subroutine s(a)
  integer a
  write a
end
"""
        result = analyze(source)
        trace = run_program(source)
        result.solved.val["s"]["a"] = 2
        violations = check_soundness(result, trace)
        assert len(violations) == 3
        assert [v.invocation for v in violations] == [0, 1, 2]
