"""Every example must run cleanly (they are part of the public surface)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path):
    completed = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples must print something"


def test_examples_exist():
    assert len(EXAMPLES) >= 4
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
