"""The wave-parallel solver is another schedule of the same monotone
fixpoint: its VAL sets must be byte-identical to the sequential region
schedule's on every program — generated, hand-built, and the full
workload suite — and any pool failure must degrade (RL540), never crash.

Inline execution (``workers=1``, or any wave with a single activated
region) runs the *same* task function the pool runs, so the cheap inline
comparisons here cover the task logic itself; the ``slow``-marked tests
add real process pools on top (startup cost, pickling, worker rebuild,
worker death).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import analyze
from repro.analysis.ssa import ensure_global_symbols
from repro.callgraph import build_call_graph, compute_modref
from repro.core.builder import build_forward_jump_functions
from repro.core.config import AnalysisConfig, JumpFunctionKind
from repro.core.parallel import solve_parallel
from repro.core.returns import build_return_jump_functions
from repro.core.solver import solve
from repro.frontend import parse_program
from repro.ir import lower_program
from repro.resilience import chaos
from repro.resilience.chaos import ChaosSpec, Fault
from repro.resilience.errors import Stage
from repro.workloads import load, suite_names
from repro.workloads.generator import generate
from repro.workloads.profiles import WorkloadProfile

SETTINGS = settings(max_examples=12, deadline=None)

profile_strategy = st.builds(
    WorkloadProfile,
    name=st.just("parwl"),
    seed=st.integers(1, 10_000),
    phases=st.integers(1, 3),
    pad_statements=st.integers(0, 3),
    literal_args=st.integers(0, 5),
    intra_args=st.integers(0, 3),
    passthrough_chains=st.integers(0, 3),
    chain_depth=st.integers(2, 4),
    global_constants=st.integers(0, 3),
    init_routine_globals=st.integers(0, 2),
    mod_sensitive=st.integers(0, 3),
    dead_branch_constants=st.integers(0, 2),
    local_constants=st.integers(0, 3),
    read_kills=st.integers(0, 2),
    conflicting_sites=st.integers(0, 2),
    skewed=st.booleans(),
    function_results=st.integers(0, 2),
    set_use=st.integers(0, 3),
    set_use_calls=st.integers(0, 3),
    leaf_call_fraction=st.floats(0.0, 1.0),
    extra_global_leaves=st.integers(0, 3),
    shallow_globals=st.booleans(),
)


def build(source, config=None):
    config = config or AnalysisConfig()
    lowered = lower_program(parse_program(source))
    ensure_global_symbols(lowered)
    graph = build_call_graph(lowered)
    modref = compute_modref(lowered, graph)
    returns = build_return_jump_functions(lowered, graph, modref, config)
    forward = build_forward_jump_functions(lowered, modref, returns, config)
    return lowered, graph, forward


def assert_equivalent(source, config=None, compiled=False):
    lowered, graph, forward = build(source, config)
    seq = solve(lowered, graph, forward)
    par = solve_parallel(
        lowered, graph, forward, workers=1, compiled=compiled
    )
    assert par.val == seq.val
    assert par.reached == seq.reached
    assert par.all_constants() == seq.all_constants()
    # schedule-shape counters agree too: both converge the same regions
    # with the same local sweep counts
    assert par.passes == seq.passes
    assert par.pops == seq.pops
    assert par.regions == seq.regions
    assert par.region_passes == seq.region_passes
    assert par.waves >= 1
    return par, seq


@given(profile=profile_strategy, compiled=st.booleans())
@SETTINGS
def test_parallel_matches_sequential_on_generated_workloads(
    profile, compiled
):
    workload = generate(profile)
    assert_equivalent(workload.source, compiled=compiled)


@given(profile=profile_strategy, kind=st.sampled_from(list(JumpFunctionKind)))
@SETTINGS
def test_parallel_matches_sequential_across_jump_functions(profile, kind):
    workload = generate(profile)
    assert_equivalent(
        workload.source, AnalysisConfig(jump_function=kind)
    )


class TestCorpusShapes:
    """The call-graph shapes that stress the wave scheduler."""

    def test_giant_scc_converges_identically(self):
        # one wide recursive ring: a single multi-member region whose
        # local worklist convergence must match the sequential one
        width = 6
        lines = ["program m", "  call r0(10)", "end"]
        for i in range(width):
            succ = (i + 1) % width
            lines.extend(
                [
                    f"subroutine r{i}(n)",
                    "  integer n",
                    f"  if (n > 0) call r{succ}(n - 1)",
                    "end",
                ]
            )
        par, seq = assert_equivalent("\n".join(lines) + "\n")
        assert par.regions == 2  # main + the ring

    def test_mutual_recursion_three_wide(self):
        source = """
program m
  call a(9)
end
subroutine a(n)
  integer n
  if (n > 0) call b(n - 1)
end
subroutine b(n)
  integer n
  if (n > 0) call c(n - 1)
end
subroutine c(n)
  integer n
  if (n > 0) call a(n - 1)
end
"""
        assert_equivalent(source)

    def test_unreachable_components_stay_top(self):
        # orphan components are never activated: no wave runs them, and
        # their entries stay ⊤ exactly as in the sequential schedule
        source = """
program m
  call s(1)
end
subroutine s(a)
  integer a
  write a
end
subroutine orphan1(c)
  integer c
  call orphan2(c)
end
subroutine orphan2(d)
  integer d
  call s(d)
end
"""
        par, seq = assert_equivalent(source)
        assert "orphan1" not in par.reached
        assert all(v is not None for v in par.val["orphan2"].values())

    def test_diamond_fanout_waves(self):
        source = """
program m
  call b(1)
  call c(1)
end
subroutine b(x)
  integer x
  call d(x)
end
subroutine c(y)
  integer y
  call d(y)
end
subroutine d(z)
  integer z
  write z
end
"""
        par, _ = assert_equivalent(source)
        # m | b,c | d — three dependency levels
        assert par.waves == 3


class TestFullSuite:
    def test_suite_byte_identical_inline(self):
        # every workload program, sequential vs wave-parallel (inline
        # mode runs the identical task code the pool runs): VAL sets,
        # degradations, and diagnostics must match byte for byte
        config = AnalysisConfig(jump_function=JumpFunctionKind.POLYNOMIAL)
        parallel = AnalysisConfig(
            jump_function=JumpFunctionKind.POLYNOMIAL,
            parallel_regions=1,
            compiled_exprs=True,
        )
        for name in suite_names():
            source = load(name, scale=0.3).source
            seq = analyze(source, config, cache=None)
            par = analyze(source, parallel, cache=None)
            assert par.solved.val == seq.solved.val, name
            assert par.solved.reached == seq.solved.reached, name
            assert par.all_constants() == seq.all_constants(), name
            assert par.degradations == seq.degradations == (), name
            assert [d.code for d in par.resilience_diagnostics()] == [
                d.code for d in seq.resilience_diagnostics()
            ], name


@pytest.mark.slow
class TestRealPool:
    def test_pool_solve_matches_sequential(self):
        # a real two-worker pool: fork inheritance, task pickling, and
        # deterministic merge must reproduce the sequential VAL exactly
        config = AnalysisConfig(jump_function=JumpFunctionKind.POLYNOMIAL)
        parallel = AnalysisConfig(
            jump_function=JumpFunctionKind.POLYNOMIAL,
            parallel_regions=2,
            compiled_exprs=True,
        )
        for name in ("linpackd", "adm"):
            source = load(name, scale=0.3).source
            seq = analyze(source, config, cache=None)
            par = analyze(source, parallel, cache=None)
            assert par.solved.val == seq.solved.val, name
            assert par.degradations == (), name

    def test_pool_solve_matches_sequential_flat(self):
        # --flat --parallel: each spawned worker rebuilds the slab
        # deterministically and replays its regions' firing-stream
        # blocks; the merged VAL must reproduce sequential flat exactly
        flat = AnalysisConfig(
            jump_function=JumpFunctionKind.POLYNOMIAL, flat_engine=True
        )
        parallel = AnalysisConfig(
            jump_function=JumpFunctionKind.POLYNOMIAL,
            flat_engine=True,
            parallel_regions=2,
        )
        for name in ("linpackd", "adm"):
            source = load(name, scale=0.3).source
            seq = analyze(source, flat, cache=None)
            par = analyze(source, parallel, cache=None)
            assert par.solved.val == seq.solved.val, name
            assert par.degradations == (), name


FANOUT = """
program m
  call b(1)
  call c(2)
end
subroutine b(x)
  integer x
  call d(x + 1)
end
subroutine c(y)
  integer y
  call d(y)
end
subroutine d(z)
  integer z
  write z
end
"""


class TestChaosFallback:
    def test_region_worker_crash_degrades_to_sequential(self):
        # a crash inside the region task (inline mode hits the same
        # chaos point the workers do) must surface as one RL540
        # degradation and a sequential re-solve — same answer, no error
        clean = analyze(
            FANOUT, AnalysisConfig(parallel_regions=1), cache=None
        )
        spec = ChaosSpec(
            faults=(
                Fault(
                    stage=Stage.SOLVE, kind="crash",
                    scope="region-worker", max_firings=1,
                ),
            )
        )
        chaos.install(spec, label="p")
        try:
            result = analyze(
                FANOUT, AnalysisConfig(parallel_regions=1), cache=None
            )
        finally:
            chaos.uninstall()
        codes = [record.code for record in result.degradations]
        assert codes == ["RL540"]
        assert result.solved.val == clean.solved.val
        assert result.solved.regions_parallel == 0  # sequential rerun

    @pytest.mark.slow
    def test_killed_region_worker_degrades_to_sequential(self):
        # kill a real pool worker mid-wave (os._exit via the injector's
        # "region-worker" label, which only pool workers carry): the
        # parent sees BrokenProcessPool, records RL540, and re-solves
        clean = analyze(FANOUT, AnalysisConfig(), cache=None)
        spec = ChaosSpec(
            faults=(
                Fault(
                    stage=Stage.SOLVE, kind="kill",
                    program="region-worker", scope="region-worker",
                ),
            )
        )
        chaos.install(spec, label="parent")
        try:
            result = analyze(
                FANOUT, AnalysisConfig(parallel_regions=2), cache=None
            )
        finally:
            chaos.uninstall()
        codes = [record.code for record in result.degradations]
        assert codes == ["RL540"]
        assert result.solved.val == clean.solved.val
