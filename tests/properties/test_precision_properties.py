"""Cross-analysis precision properties on random programs.

SCCP is optimistic (values start ⊤, branches prune); value numbering is
pessimistic (loop phis fall to ⊥ immediately). Optimism can only *gain*
precision, so every constant the value numbering proves must also be
proved by SCCP with the same entry environment — on every random program.

(Known theoretical exception, not generated here: value numbering folds
*structurally* equal expressions — ``(a+1) == (a+1)`` through two distinct
temporaries — where SCCP only matches identical SSA names. The analyzer
never relies on that direction.)
"""

from hypothesis import HealthCheck, given, settings

from repro.analysis.sccp import run_sccp
from repro.analysis.ssa import build_ssa, ensure_global_symbols
from repro.analysis.valuenum import value_number
from repro.callgraph import build_call_graph, compute_modref, make_call_effects
from repro.core.lattice import BOTTOM, is_constant
from repro.frontend.symbols import parse_program
from repro.ir import lower_program
from repro.ir.instructions import SSAName

from .strategies import programs

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@given(source=programs())
@SETTINGS
def test_sccp_at_least_as_precise_as_value_numbering(source):
    lowered = lower_program(parse_program(source))
    ensure_global_symbols(lowered)
    graph = build_call_graph(lowered)
    modref = compute_modref(lowered, graph)
    for name, lowered_proc in lowered.procedures.items():
        effects = make_call_effects(lowered, name, modref)
        ssa = build_ssa(lowered_proc, effects)
        numbering = value_number(ssa, lowered)
        # entry env: everything unknown (what VN's gcp view assumes)
        sccp = run_sccp(ssa, {})
        for key, expr in numbering.exprs.items():
            vn_value = expr.evaluate({})
            if not is_constant(vn_value):
                continue
            if not isinstance(key, SSAName):
                continue
            sccp_value = sccp.values.get(SSAName(key.symbol, key.version))
            if sccp_value is None:
                continue  # dead code: SCCP never visited it
            from repro.core.lattice import TOP

            if sccp_value is TOP:
                continue  # unreachable per SCCP — vacuously fine
            assert sccp_value == vn_value, (
                f"{name}: {key} VN={vn_value} SCCP={sccp_value}"
            )


@given(source=programs())
@SETTINGS
def test_modref_monotone_under_extra_kills(source):
    """No-MOD kill sets always cover the MOD-based kill sets."""
    lowered = lower_program(parse_program(source))
    ensure_global_symbols(lowered)
    graph = build_call_graph(lowered)
    modref = compute_modref(lowered, graph)
    for name, lowered_proc in lowered.procedures.items():
        with_mod = make_call_effects(lowered, name, modref)
        without = make_call_effects(lowered, name, None)
        for call in lowered_proc.call_instrs:
            killed_with = {symbol for symbol, _ in with_mod(call)}
            killed_without = {symbol for symbol, _ in without(call)}
            assert killed_with <= killed_without
