"""The three stage-3 solvers are different schedules of the same monotone
fixpoint: on every program they must produce bit-identical VAL sets.

Dense re-evaluation, sparse procedure-grained deltas, and binding-grained
deltas all meet the same monotone jump-function evaluations into the same
lattice from ⊤, so chaotic-iteration theory promises one greatest
fixpoint. These properties check the implementations actually deliver it
over randomly generated workloads (and random jump-function kinds).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.ssa import ensure_global_symbols
from repro.callgraph import build_call_graph, compute_modref
from repro.core.binding_solver import solve_binding_graph
from repro.core.builder import build_forward_jump_functions
from repro.core.config import AnalysisConfig, JumpFunctionKind
from repro.core.returns import build_return_jump_functions
from repro.core.solver import solve, solve_dense
from repro.frontend import parse_program
from repro.ir import lower_program
from repro.workloads.generator import generate
from repro.workloads.profiles import WorkloadProfile

SETTINGS = settings(max_examples=15, deadline=None)

# Small but structurally diverse profiles: every jump-function shape the
# generator knows (literal, intraprocedural, pass-through chains, global
# mutation, read kills, conflicting sites) in a few procedures.
profile_strategy = st.builds(
    WorkloadProfile,
    name=st.just("eqwl"),
    seed=st.integers(1, 10_000),
    phases=st.integers(1, 3),
    pad_statements=st.integers(0, 3),
    literal_args=st.integers(0, 5),
    intra_args=st.integers(0, 3),
    passthrough_chains=st.integers(0, 3),
    chain_depth=st.integers(2, 4),
    global_constants=st.integers(0, 3),
    init_routine_globals=st.integers(0, 2),
    mod_sensitive=st.integers(0, 3),
    dead_branch_constants=st.integers(0, 2),
    local_constants=st.integers(0, 3),
    read_kills=st.integers(0, 2),
    conflicting_sites=st.integers(0, 2),
    skewed=st.booleans(),
    function_results=st.integers(0, 2),
    set_use=st.integers(0, 3),
    set_use_calls=st.integers(0, 3),
    leaf_call_fraction=st.floats(0.0, 1.0),
    extra_global_leaves=st.integers(0, 3),
    shallow_globals=st.booleans(),
)

kind_strategy = st.sampled_from(list(JumpFunctionKind))


def solve_three_ways(source, config):
    program = parse_program(source)
    lowered = lower_program(program)
    ensure_global_symbols(lowered)
    graph = build_call_graph(lowered)
    modref = compute_modref(lowered, graph)
    returns = build_return_jump_functions(lowered, graph, modref, config)
    forward = build_forward_jump_functions(lowered, modref, returns, config)
    return (
        solve_dense(lowered, graph, forward),
        solve(lowered, graph, forward),
        solve_binding_graph(lowered, graph, forward),
    )


@given(profile=profile_strategy, kind=kind_strategy)
@SETTINGS
def test_solvers_agree_on_generated_workloads(profile, kind):
    workload = generate(profile)
    config = AnalysisConfig(jump_function=kind)
    dense, sparse, binding = solve_three_ways(workload.source, config)

    assert dense.reached == sparse.reached == binding.reached
    assert dense.val == sparse.val == binding.val
    assert (
        dense.all_constants()
        == sparse.all_constants()
        == binding.all_constants()
    )


@given(profile=profile_strategy)
@SETTINGS
def test_sparse_never_evaluates_more_than_dense(profile):
    workload = generate(profile)
    dense, sparse, _ = solve_three_ways(workload.source, AnalysisConfig())
    assert sparse.evaluations <= dense.evaluations
    # the sparse engine never transfers a binding dense would not
    # (it additionally skips meets into bindings already at ⊥)
    assert sparse.meets <= dense.meets
