"""Property-based tests over the workload generator's knobs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import parse_program
from repro.interp import run_program
from repro.workloads.generator import generate
from repro.workloads.profiles import PROFILES, WorkloadProfile

SETTINGS = settings(max_examples=20, deadline=None)

profile_strategy = st.builds(
    WorkloadProfile,
    name=st.just("fuzzwl"),
    seed=st.integers(1, 10_000),
    phases=st.integers(1, 5),
    pad_statements=st.integers(0, 6),
    literal_args=st.integers(0, 8),
    intra_args=st.integers(0, 4),
    passthrough_chains=st.integers(0, 3),
    chain_depth=st.integers(2, 4),
    global_constants=st.integers(0, 4),
    init_routine_globals=st.integers(0, 4),
    mod_sensitive=st.integers(0, 4),
    dead_branch_constants=st.integers(0, 3),
    local_constants=st.integers(0, 4),
    read_kills=st.integers(0, 3),
    conflicting_sites=st.integers(0, 2),
    skewed=st.booleans(),
    function_results=st.integers(0, 2),
    set_use=st.integers(0, 5),
    set_use_calls=st.integers(0, 5),
    leaf_call_fraction=st.floats(0.0, 1.0),
    extra_global_leaves=st.integers(0, 5),
    shallow_globals=st.booleans(),
)


@given(profile=profile_strategy)
@SETTINGS
def test_any_profile_generates_a_runnable_program(profile):
    workload = generate(profile)
    program = parse_program(workload.source)
    assert program.main == "fuzzwl"
    trace = run_program(
        workload.source, inputs=workload.inputs, max_steps=3_000_000
    )
    assert trace.steps > 0


@given(profile=profile_strategy)
@SETTINGS
def test_generation_is_deterministic(profile):
    assert generate(profile).source == generate(profile).source


@given(profile=profile_strategy)
@SETTINGS
def test_inputs_match_read_count(profile):
    workload = generate(profile)
    assert len(workload.inputs) == profile.read_kills


@given(name=st.sampled_from(sorted(PROFILES)), factor=st.floats(0.1, 1.0))
@SETTINGS
def test_scaling_shrinks_monotonically(name, factor):
    base = PROFILES[name]
    scaled = base.scaled(factor)
    full = generate(base)
    small = generate(scaled)
    assert small.line_count <= full.line_count
    # shape flags survive scaling
    assert scaled.skewed == base.skewed
    assert scaled.shallow_globals == base.shallow_globals


@pytest.mark.slow  # dozens of hypothesis examples, each a 4-config sweep
@given(profile=profile_strategy)
@SETTINGS
def test_jump_function_ordering_on_random_profiles(profile):
    from repro import AnalysisConfig, Analyzer, JumpFunctionKind

    workload = generate(profile)
    analyzer = Analyzer(workload.source)
    counts = {
        kind: analyzer.run(AnalysisConfig(jump_function=kind)).constants_found
        for kind in JumpFunctionKind
    }
    assert counts[JumpFunctionKind.LITERAL] <= counts[
        JumpFunctionKind.INTRAPROCEDURAL
    ]
    assert (
        counts[JumpFunctionKind.INTRAPROCEDURAL]
        <= counts[JumpFunctionKind.PASS_THROUGH]
    )
    assert (
        counts[JumpFunctionKind.PASS_THROUGH]
        <= counts[JumpFunctionKind.POLYNOMIAL]
    )
