"""Property-based whole-pipeline fuzzing.

Random programs from :mod:`strategies` are pushed through every stage:
parse → resolve → lower → analyze (several configurations) → execute →
differential soundness audit. Failures here mean a real bug somewhere in
the stack, which is exactly the point.
"""

from hypothesis import HealthCheck, given, settings

from repro import AnalysisConfig, Analyzer, JumpFunctionKind
from repro.core.lattice import is_constant
from repro.frontend.parser import parse_source
from repro.frontend.symbols import parse_program
from repro.frontend.unparse import unparse
from repro.interp import InterpError, check_soundness, run_program

from .strategies import programs

FUZZ_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@given(source=programs())
@FUZZ_SETTINGS
def test_pipeline_never_crashes(source):
    analyzer = Analyzer(source)
    for kind in JumpFunctionKind:
        result = analyzer.run(AnalysisConfig(jump_function=kind))
        assert result.constants_found >= 0


@given(source=programs())
@FUZZ_SETTINGS
def test_jump_function_chain_on_random_programs(source):
    analyzer = Analyzer(source)
    results = {
        kind: analyzer.run(AnalysisConfig(jump_function=kind))
        for kind in JumpFunctionKind
    }
    chain = [
        JumpFunctionKind.LITERAL,
        JumpFunctionKind.INTRAPROCEDURAL,
        JumpFunctionKind.PASS_THROUGH,
        JumpFunctionKind.POLYNOMIAL,
    ]
    for weak, strong in zip(chain, chain[1:]):
        for proc in results[weak].lowered.procedures:
            weak_constants = results[weak].constants(proc)
            strong_constants = results[strong].constants(proc)
            for key, value in weak_constants.items():
                assert strong_constants.get(key) == value, (
                    f"{strong.value} lost {proc}.{key}={value} "
                    f"found by {weak.value}"
                )


@given(source=programs())
@FUZZ_SETTINGS
def test_analyzer_sound_on_random_programs(source):
    try:
        trace = run_program(source, max_steps=300_000)
    except InterpError:
        # overflow-free by construction, but a fuzzam may still divide by
        # zero via '**' folding etc.; partial traces remain valid evidence
        return
    analyzer = Analyzer(source)
    for config in (
        AnalysisConfig(JumpFunctionKind.POLYNOMIAL),
        AnalysisConfig(JumpFunctionKind.POLYNOMIAL, use_mod=False),
        AnalysisConfig(JumpFunctionKind.POLYNOMIAL, complete=True),
        AnalysisConfig(
            JumpFunctionKind.POLYNOMIAL, compose_return_functions=True
        ),
    ):
        result = analyzer.run(config)
        violations = check_soundness(result, trace)
        assert violations == [], "\n".join(str(v) for v in violations)


@given(source=programs())
@FUZZ_SETTINGS
def test_unparse_roundtrip_on_random_programs(source):
    once = unparse(parse_source(source))
    twice = unparse(parse_source(once))
    assert once == twice
    parse_program(once)


@given(source=programs())
@FUZZ_SETTINGS
def test_sccp_agrees_with_execution_outputs(source):
    """If the analyzer proves a WRITE operand constant, the program must
    only ever write that value at that site."""
    try:
        trace = run_program(source, max_steps=300_000)
    except InterpError:
        return
    analyzer = Analyzer(source)
    result = analyzer.run(AnalysisConfig(JumpFunctionKind.POLYNOMIAL))
    # Every claimed constant in CONSTANTS must be internally consistent:
    # is_constant values only.
    for proc in result.lowered.procedures:
        for value in result.constants(proc).values():
            assert is_constant(value)
    assert check_soundness(result, trace) == []
