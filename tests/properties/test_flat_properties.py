"""The flat slab engine is another schedule of the same monotone
fixpoint: on every generated program, every jump-function kind, it must
produce VAL sets byte-identical to the object engine's — including the
lattice *class* of each value (``True == 1`` under ``==``, so a plain
dict compare would miss a LOGICAL/INTEGER confusion in the pool).

The parallel comparison also exercises the SlabSegment transport: the
wave solver ships worker environments back as encoded segments, so
value identity across ``solve_parallel`` and ``solve_flat`` covers
encode/decode round-trips over real solver output.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.ssa import ensure_global_symbols
from repro.callgraph import build_call_graph, compute_modref
from repro.core.builder import build_forward_jump_functions
from repro.core.config import AnalysisConfig, JumpFunctionKind
from repro.core.exprs import clear_intern_table
from repro.core.driver import Analyzer, analyze
from repro.core.parallel import solve_parallel
from repro.core.returns import build_return_jump_functions
from repro.core.slab import slab_for
from repro.core.solver import solve
from repro.frontend import parse_program
from repro.ir import lower_program
from repro.workloads.generator import generate
from repro.workloads.profiles import WorkloadProfile

from .test_incremental_properties import edit_one_procedure

SETTINGS = settings(max_examples=12, deadline=None)

profile_strategy = st.builds(
    WorkloadProfile,
    name=st.just("flatwl"),
    seed=st.integers(1, 10_000),
    phases=st.integers(1, 3),
    pad_statements=st.integers(0, 3),
    literal_args=st.integers(0, 5),
    intra_args=st.integers(0, 3),
    passthrough_chains=st.integers(0, 3),
    chain_depth=st.integers(2, 4),
    global_constants=st.integers(0, 3),
    init_routine_globals=st.integers(0, 2),
    mod_sensitive=st.integers(0, 3),
    dead_branch_constants=st.integers(0, 2),
    local_constants=st.integers(0, 3),
    read_kills=st.integers(0, 2),
    conflicting_sites=st.integers(0, 2),
    skewed=st.booleans(),
    function_results=st.integers(0, 2),
    set_use=st.integers(0, 3),
    set_use_calls=st.integers(0, 3),
    leaf_call_fraction=st.floats(0.0, 1.0),
    extra_global_leaves=st.integers(0, 3),
    shallow_globals=st.booleans(),
    scc_ring=st.integers(0, 6),
    scc_depth=st.integers(2, 4),
)

kind_strategy = st.sampled_from(list(JumpFunctionKind))


def build(source, config):
    program = parse_program(source)
    lowered = lower_program(program)
    ensure_global_symbols(lowered)
    graph = build_call_graph(lowered)
    modref = compute_modref(lowered, graph)
    returns = build_return_jump_functions(lowered, graph, modref, config)
    forward = build_forward_jump_functions(lowered, modref, returns, config)
    return lowered, graph, forward


def canonical(val):
    """Class-aware VAL image: catches a bool decoded as int (or vice
    versa) that ``==`` would wave through."""
    return {
        proc: {key: (type(v), v) for key, v in env.items()}
        for proc, env in val.items()
    }


@given(profile=profile_strategy, kind=kind_strategy)
@SETTINGS
def test_flat_matches_object_engine(profile, kind):
    workload = generate(profile)
    config = AnalysisConfig(jump_function=kind)
    lowered, graph, forward = build(workload.source, config)
    obj = solve(lowered, graph, forward)
    flat = solve(lowered, graph, forward, flat=True)
    assert flat.reached == obj.reached
    assert canonical(flat.val) == canonical(obj.val)
    assert flat.all_constants() == obj.all_constants()


@given(profile=profile_strategy, kind=kind_strategy)
@SETTINGS
def test_flat_matches_parallel_segments(profile, kind):
    workload = generate(profile)
    config = AnalysisConfig(jump_function=kind)
    lowered, graph, forward = build(workload.source, config)
    par = solve_parallel(lowered, graph, forward, workers=1)
    flat = solve(lowered, graph, forward, flat=True)
    assert canonical(flat.val) == canonical(par.val)


@given(profile=profile_strategy)
@SETTINGS
def test_flat_survives_intern_table_clear(profile):
    # slab kernels close over slot ids and pool entries, never interned
    # expression nodes — clearing the table between build and solve
    # (the incremental-session hazard) must not change any VAL
    workload = generate(profile)
    config = AnalysisConfig(jump_function=JumpFunctionKind.POLYNOMIAL)
    lowered, graph, forward = build(workload.source, config)
    expected = canonical(solve(lowered, graph, forward).val)
    slab_for(forward, lowered, graph)
    clear_intern_table()
    try:
        flat = solve(lowered, graph, forward, flat=True)
    finally:
        clear_intern_table()
    assert canonical(flat.val) == expected


@given(profile=profile_strategy, kind=kind_strategy)
@SETTINGS
def test_flat_parallel_replay_matches_flat(profile, kind):
    # the parallel wave solver under --flat replays the slab's baked
    # firing-stream blocks per region instead of running the object
    # engine: same greatest fixpoint, byte-identical VALs
    workload = generate(profile)
    config = AnalysisConfig(jump_function=kind, flat_engine=True)
    lowered, graph, forward = build(workload.source, config)
    par = solve_parallel(lowered, graph, forward, workers=1, config=config)
    flat = solve(lowered, graph, forward, flat=True)
    assert par.reached == flat.reached
    assert canonical(par.val) == canonical(flat.val)


@given(profile=profile_strategy, data=st.data())
@SETTINGS
def test_patched_slab_matches_rebuild(profile, data):
    # patch-then-solve == rebuild-then-solve: a single-procedure edit
    # spliced into the retained slab must be indistinguishable from a
    # from-scratch flat analyze of the edited source
    workload = generate(profile)
    config = AnalysisConfig(
        jump_function=JumpFunctionKind.POLYNOMIAL, flat_engine=True
    )
    edited = edit_one_procedure(workload.source, data)
    analyzer = Analyzer(workload.source)
    analyzer.run(config)
    patched = analyzer.reanalyze(edited, config)
    scratch = analyze(edited, config)
    assert canonical(patched.solved.val) == canonical(scratch.solved.val)
    assert patched.solved.reached == scratch.solved.reached
    assert patched.all_constants() == scratch.all_constants()
