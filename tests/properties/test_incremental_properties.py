"""Incremental re-analysis is invisible in the results: for any generated
workload and any single-procedure edit, ``Analyzer.reanalyze`` (warm,
diffing fingerprints against the published snapshot) must produce the
same CONSTANTS sets and substitution counts as a from-scratch
``analyze`` of the edited source.

The edit model mirrors what the incremental machinery is specced
against: pick one program unit, bump one standalone integer literal in
its body. That perturbs jump functions, MOD/REF slices, or branch
feasibility depending on where the literal sat — all of which the
fingerprint diff must catch.
"""

import re

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import AnalysisConfig, JumpFunctionKind
from repro.core.driver import Analyzer, analyze
from repro.workloads.generator import generate
from repro.workloads.profiles import WorkloadProfile

from .test_solver_equivalence import profile_strategy

SETTINGS = settings(max_examples=15, deadline=None)

#: standalone integer literal — never digits embedded in an identifier
_LITERAL = re.compile(r"(?<![\w.])\d+(?![\w.])")


def unit_spans(lines):
    """(header_index, end_index) for every program unit, header included."""
    spans, start = [], None
    for index, line in enumerate(lines):
        stripped = line.strip()
        if start is None and stripped.startswith(
            ("program", "subroutine", "function", "integer function")
        ):
            start = index
        elif start is not None and stripped == "end":
            spans.append((start, index))
            start = None
    return spans


def edit_one_procedure(source, data):
    """Bump one integer literal inside one unit's body; returns the
    edited source, or the original when no literal exists to edit."""
    lines = source.splitlines()
    editable = []
    for header, end in unit_spans(lines):
        for index in range(header + 1, end):
            if "integer" in lines[index]:
                continue  # declarations: nothing constant-bearing here
            for match in _LITERAL.finditer(lines[index]):
                editable.append((index, match.start(), match.end()))
    if not editable:
        return source
    index, lo, hi = data.draw(st.sampled_from(editable), label="edit site")
    bump = data.draw(st.integers(1, 7), label="bump")
    line = lines[index]
    value = int(line[lo:hi]) + bump
    lines[index] = line[:lo] + str(value) + line[hi:]
    return "\n".join(lines) + "\n"


@given(profile=profile_strategy, kind=st.sampled_from(list(JumpFunctionKind)),
       data=st.data())
@SETTINGS
def test_reanalyze_matches_from_scratch(profile, kind, data):
    workload = generate(profile)
    config = AnalysisConfig(jump_function=kind)
    edited = edit_one_procedure(workload.source, data)

    analyzer = Analyzer(workload.source)
    analyzer.run(config)
    warm = analyzer.reanalyze(edited, config)
    cold = analyze(edited, config)

    assert warm.incremental is not None
    assert warm.incremental.store_fallbacks == 0
    assert warm.solved.reached == cold.solved.reached
    assert warm.solved.val == cold.solved.val
    assert warm.all_constants() == cold.all_constants()
    assert warm.constants_found == cold.constants_found
    assert warm.references_substituted == cold.references_substituted


@given(profile=profile_strategy, data=st.data())
@SETTINGS
def test_identical_source_reanalyzes_fully_warm(profile, data):
    workload = generate(profile)
    analyzer = Analyzer(workload.source)
    first = analyzer.run()
    again = analyzer.reanalyze(workload.source)
    assert again.incremental.mode == "warm"
    assert again.incremental.changed == ()
    assert again.solved.regions == 0
    assert again.solved.val == first.solved.val
    assert again.all_constants() == first.all_constants()
