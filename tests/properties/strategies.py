"""Hypothesis strategies that generate random (valid, runnable)
MiniFortran programs.

Generated programs are *closed*: every variable is initialized before the
first statement that could read it, loop bounds are small literals, and
division never appears — so the reference interpreter always terminates
quickly, which is what lets the fuzz tests check analyzer soundness
against real executions.
"""

from __future__ import annotations

from hypothesis import strategies as st

_INT_VARS = ("n1", "n2", "n3", "m1", "m2")
_GLOBALS = ("g1", "g2")

small_int = st.integers(min_value=-20, max_value=20)
loop_bound = st.integers(min_value=0, max_value=4)


@st.composite
def expressions(draw, depth: int = 2) -> str:
    """An integer-valued expression over the fixed variable pool."""
    if depth <= 0:
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return str(draw(small_int))
        if choice == 1:
            return draw(st.sampled_from(_INT_VARS))
        return draw(st.sampled_from(_GLOBALS))
    kind = draw(st.integers(0, 4))
    if kind == 0:
        return str(draw(small_int))
    if kind == 1:
        return draw(st.sampled_from(_INT_VARS + _GLOBALS))
    left = draw(expressions(depth=depth - 1))
    right = draw(expressions(depth=depth - 1))
    if kind == 2:
        op = draw(st.sampled_from(["+", "-", "*"]))
        return f"({left} {op} {right})"
    if kind == 3:
        name = draw(st.sampled_from(["max", "min"]))
        return f"{name}({left}, {right})"
    return f"(-{left})"


@st.composite
def conditions(draw) -> str:
    left = draw(expressions(depth=1))
    right = draw(expressions(depth=1))
    op = draw(st.sampled_from(["==", "/=", "<", "<=", ">", ">="]))
    return f"{left} {op} {right}"


def _safe_index(expr: str) -> str:
    """An expression guaranteed to land in 1..12 (the array extent)."""
    return f"mod(iabs({expr}), 12) + 1"


@st.composite
def statements(draw, depth: int = 2, callees: tuple[str, ...] = ()) -> list[str]:
    """A short statement list (as indented source lines)."""
    lines: list[str] = []
    count = draw(st.integers(1, 4))
    for _ in range(count):
        kind = draw(st.integers(0, 7 if depth > 0 else 3))
        if kind <= 1:
            var = draw(st.sampled_from(_INT_VARS + _GLOBALS))
            lines.append(f"  {var} = {draw(expressions())}")
        elif kind == 2:
            lines.append(f"  write {draw(expressions(depth=1))}")
        elif kind == 3 and callees:
            callee = draw(st.sampled_from(callees))
            lines.append(f"  call {callee}({draw(expressions(depth=1))})")
        elif kind == 6:
            index = _safe_index(draw(expressions(depth=1)))
            lines.append(f"  av({index}) = {draw(expressions(depth=1))}")
        elif kind == 7:
            var = draw(st.sampled_from(_INT_VARS))
            index = _safe_index(draw(expressions(depth=1)))
            lines.append(f"  {var} = av({index})")
        elif kind == 4:
            body = draw(statements(depth=depth - 1, callees=callees))
            cond = draw(conditions())
            lines.append(f"  if ({cond}) then")
            lines.extend("  " + line for line in body)
            if draw(st.booleans()):
                other = draw(statements(depth=depth - 1, callees=callees))
                lines.append("  else")
                lines.extend("  " + line for line in other)
            lines.append("  endif")
        elif kind == 5:
            body = draw(statements(depth=depth - 1, callees=callees))
            bound = draw(loop_bound)
            lines.append(f"  do i1 = 1, {bound}")
            lines.extend("  " + line for line in body)
            lines.append("  enddo")
        else:
            lines.append(f"  write {draw(small_int)}")
    return lines


_PRELUDE = [f"  {v} = {i}" for i, v in enumerate(_INT_VARS)] + [
    # fully initialize the scratch array so loads never read undefined
    # storage regardless of the random index expressions
    "  do i1 = 1, 12",
    "    av(i1) = i1",
    "  enddo",
]


def _proc_header_decls() -> list[str]:
    names = ", ".join(_INT_VARS + ("i1",))
    return [
        f"  integer {names}",
        "  integer av(12)",
        f"  common /cg/ {', '.join(_GLOBALS)}",
        f"  integer {', '.join(_GLOBALS)}",
    ]


@st.composite
def programs(draw) -> str:
    """A whole program: main + up to three one-parameter subroutines."""
    n_subs = draw(st.integers(0, 3))
    sub_names = tuple(f"sub{i + 1}" for i in range(n_subs))

    units: list[str] = []
    main_lines = ["program fuzz"]
    main_lines.extend(_proc_header_decls())
    main_lines.extend(_PRELUDE)
    for global_name in _GLOBALS:
        main_lines.append(f"  {global_name} = {draw(small_int)}")
    main_lines.extend(draw(statements(callees=sub_names)))
    main_lines.append("end")
    units.append("\n".join(main_lines))

    for index, name in enumerate(sub_names):
        # Later subroutines may call earlier ones (keeps the graph acyclic).
        callable_from_here = sub_names[:index]
        lines = [f"subroutine {name}(p1)"]
        lines.append("  integer p1")
        lines.extend(_proc_header_decls())
        lines.extend(_PRELUDE)
        lines.extend(draw(statements(callees=callable_from_here)))
        lines.append(f"  write p1")
        lines.append("end")
        units.append("\n".join(lines))

    return "\n\n".join(units) + "\n"
