"""Property-based tests for dominance on randomly generated CFGs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.dominance import compute_dominators, iterated_frontier
from repro.ir.cfg import ControlFlowGraph
from repro.ir.instructions import CJump, Jump, Return, bool_const


@st.composite
def random_cfgs(draw):
    """A connected CFG with arbitrary branch structure.

    Blocks 0..n-1 exist; every block branches to one or two random
    successors (favoring forward edges but allowing loops); the last block
    returns. Every block is wired so it remains reachable by construction:
    block i's primary successor is drawn from blocks i+1..n-1 when
    possible.
    """
    n = draw(st.integers(min_value=2, max_value=12))
    cfg = ControlFlowGraph()
    blocks = [cfg.new_block() for _ in range(n)]
    cfg.entry_id = blocks[0].id
    cfg.exit_id = blocks[-1].id
    for i, block in enumerate(blocks[:-1]):
        # forward edge keeps everything reachable and guarantees exit paths
        forward = draw(st.integers(min_value=i + 1, max_value=n - 1))
        if draw(st.booleans()):
            other = draw(st.integers(min_value=0, max_value=n - 1))
            block.append(
                CJump(
                    cond=bool_const(True),
                    if_true=blocks[forward].id,
                    if_false=blocks[other].id,
                )
            )
        else:
            block.append(Jump(blocks[forward].id))
    blocks[-1].append(Return())
    cfg.remove_unreachable()
    cfg.refresh()
    return cfg


SETTINGS = settings(max_examples=80, deadline=None)


@given(cfg=random_cfgs())
@SETTINGS
def test_entry_dominates_everything(cfg):
    tree = compute_dominators(cfg)
    for block_id in tree.idom:
        assert tree.dominates(cfg.entry_id, block_id)


@given(cfg=random_cfgs())
@SETTINGS
def test_idom_strictly_dominates(cfg):
    tree = compute_dominators(cfg)
    for block_id, parent in tree.idom.items():
        if block_id == cfg.entry_id:
            assert parent == block_id
        else:
            assert tree.strictly_dominates(parent, block_id)


@given(cfg=random_cfgs())
@SETTINGS
def test_idom_agrees_with_bruteforce(cfg):
    """The CHK algorithm must match path-enumeration dominance."""
    tree = compute_dominators(cfg)
    reachable = sorted(tree.idom)

    def dominates_bruteforce(a: int, b: int) -> bool:
        # a dominates b iff removing a disconnects b from entry
        if a == b:
            return True
        seen = set()
        stack = [cfg.entry_id]
        while stack:
            node = stack.pop()
            if node == a or node in seen:
                continue
            seen.add(node)
            stack.extend(cfg.blocks[node].successors())
        return b not in seen

    for b in reachable:
        for a in reachable:
            assert tree.dominates(a, b) == dominates_bruteforce(a, b), (a, b)


@given(cfg=random_cfgs())
@SETTINGS
def test_frontier_definition(cfg):
    """b ∈ DF(a) iff a dominates a predecessor of b but not strictly b."""
    tree = compute_dominators(cfg)
    reachable = set(tree.idom)
    for a in reachable:
        expected = set()
        for b in reachable:
            preds = [p for p in cfg.blocks[b].preds if p in reachable]
            if any(tree.dominates(a, p) for p in preds) and not (
                tree.strictly_dominates(a, b)
            ):
                expected.add(b)
        assert tree.frontier[a] == expected, a


@given(cfg=random_cfgs())
@SETTINGS
def test_iterated_frontier_is_fixpoint(cfg):
    tree = compute_dominators(cfg)
    reachable = sorted(tree.idom)
    seed = set(reachable[: max(1, len(reachable) // 2)])
    closure = iterated_frontier(tree, seed)
    again = iterated_frontier(tree, seed | closure)
    assert closure <= again
    # fixpoint: adding the closure's own frontier gains nothing new
    assert again == closure | {
        f for b in closure for f in tree.frontier.get(b, ())
    } | closure or closure == again


@given(cfg=random_cfgs())
@SETTINGS
def test_preorder_is_a_permutation(cfg):
    tree = compute_dominators(cfg)
    order = tree.preorder()
    assert sorted(order) == sorted(tree.idom)
