"""Tests for the shared FORTRAN arithmetic semantics.

These helpers back every compile-time evaluator *and* the interpreter;
the property tests pin the agreements the differential oracle depends on.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import semantics
from repro.semantics import (
    EvalError,
    apply_binary,
    apply_intrinsic,
    apply_unary,
    int_div,
    int_mod,
    int_pow,
    isign,
    nint,
)

nonzero = st.integers(-100, 100).filter(lambda n: n != 0)
ints = st.integers(-1000, 1000)


class TestIntegerDivision:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            (7, 2, 3),
            (-7, 2, -3),
            (7, -2, -3),
            (-7, -2, 3),
            (0, 5, 0),
            (6, 3, 2),
            (1, 2, 0),
            (-1, 2, 0),
        ],
    )
    def test_truncates_toward_zero(self, a, b, expected):
        assert int_div(a, b) == expected

    def test_zero_divisor_raises(self):
        with pytest.raises(EvalError):
            int_div(1, 0)

    @given(ints, nonzero)
    def test_division_identity(self, a, b):
        quotient = int_div(a, b)
        remainder = int_mod(a, b)
        assert quotient * b + remainder == a

    @given(ints, nonzero)
    def test_remainder_sign_follows_dividend(self, a, b):
        remainder = int_mod(a, b)
        if remainder != 0:
            assert (remainder > 0) == (a > 0)

    @given(ints, nonzero)
    def test_remainder_magnitude_bounded(self, a, b):
        assert abs(int_mod(a, b)) < abs(b)


class TestOtherOps:
    def test_int_pow(self):
        assert int_pow(2, 10) == 1024
        assert int_pow(-3, 3) == -27
        assert int_pow(5, 0) == 1

    def test_int_pow_negative_exponent_truncates(self):
        assert int_pow(2, -1) == 0
        assert int_pow(1, -5) == 1
        assert int_pow(-1, -3) == -1

    @pytest.mark.parametrize(
        "x,expected",
        [(0.5, 1), (0.4, 0), (-0.5, -1), (-0.4, 0), (2.5, 3), (-2.5, -3)],
    )
    def test_nint_rounds_half_away_from_zero(self, x, expected):
        assert nint(x) == expected

    @pytest.mark.parametrize(
        "a,b,expected", [(5, 1, 5), (5, -1, -5), (-5, 1, 5), (5, 0, 5)]
    )
    def test_isign(self, a, b, expected):
        assert isign(a, b) == expected


class TestApplyBinary:
    @given(ints, ints)
    def test_add_sub_mul_match_python(self, a, b):
        assert apply_binary("+", a, b) == a + b
        assert apply_binary("-", a, b) == a - b
        assert apply_binary("*", a, b) == a * b

    @given(ints, ints)
    def test_comparisons_match_python(self, a, b):
        assert apply_binary("<", a, b) == (a < b)
        assert apply_binary(">=", a, b) == (a >= b)
        assert apply_binary("==", a, b) == (a == b)
        assert apply_binary("/=", a, b) == (a != b)

    def test_logical(self):
        assert apply_binary(".and.", True, False) is False
        assert apply_binary(".or.", True, False) is True

    def test_float_division(self):
        assert apply_binary("/", 1.0, 4.0) == 0.25

    def test_mixed_promotes(self):
        assert apply_binary("/", 1, 4.0) == 0.25
        assert apply_binary("/", 1, 4) == 0

    def test_unknown_operator(self):
        with pytest.raises(EvalError):
            apply_binary("%%", 1, 2)

    def test_complex_power_rejected(self):
        with pytest.raises(EvalError):
            apply_binary("**", -1.0, 0.5)


class TestApplyUnaryAndIntrinsics:
    def test_unary(self):
        assert apply_unary("-", 5) == -5
        assert apply_unary("+", 5) == 5
        assert apply_unary(".not.", True) is False

    def test_intrinsics(self):
        assert apply_intrinsic("mod", [7, 3]) == 1
        assert apply_intrinsic("max", [1, 9, 4]) == 9
        assert apply_intrinsic("min", [1, 9, 4]) == 1
        assert apply_intrinsic("abs", [-3]) == 3
        assert apply_intrinsic("iabs", [-3]) == 3
        assert apply_intrinsic("int", [2.9]) == 2
        assert apply_intrinsic("real", [2]) == 2.0
        assert apply_intrinsic("nint", [2.5]) == 3
        assert apply_intrinsic("isign", [4, -2]) == -4

    def test_float_mod(self):
        assert apply_intrinsic("mod", [5.5, 2.0]) == pytest.approx(1.5)

    def test_mod_zero_raises(self):
        with pytest.raises(EvalError):
            apply_intrinsic("mod", [5, 0])
        with pytest.raises(EvalError):
            apply_intrinsic("mod", [5.0, 0.0])

    def test_unknown_intrinsic(self):
        with pytest.raises(EvalError):
            apply_intrinsic("sqrt", [4])


class TestEvaluatorInterpreterAgreement:
    """The property the differential oracle rests on: the interpreter and
    the compile-time folder produce identical integers."""

    @given(ints, nonzero, st.sampled_from(["+", "-", "*", "/"]))
    def test_binary_agreement(self, a, b, op):
        from repro.core.exprs import const_expr, make_binary

        folded = make_binary(op, const_expr(a), const_expr(b))
        runtime = apply_binary(op, a, b)
        if folded.is_constant:
            assert folded.value == runtime

    @given(ints, st.integers(-50, 50))
    def test_mod_agreement(self, a, b):
        from repro.core.exprs import const_expr, make_intrinsic

        folded = make_intrinsic("mod", [const_expr(a), const_expr(b)])
        if b == 0:
            assert folded.is_bottom
        else:
            assert folded.value == int_mod(a, b)
