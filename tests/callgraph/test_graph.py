"""Unit tests for call graph construction and SCC condensation."""

from repro.callgraph import build_call_graph
from repro.frontend import parse_program
from repro.ir import lower_program


def graph_of(source):
    return build_call_graph(lower_program(parse_program(source)))


CHAIN = """
program main
  call a
end
subroutine a
  call b
end
subroutine b
  x = 1
end
"""

DIAMOND = """
program main
  call left
  call right
end
subroutine left
  call shared
end
subroutine right
  call shared
end
subroutine shared
  x = 1
end
"""

MUTUAL = """
program main
  call even(4)
end
subroutine even(n)
  integer n
  if (n > 0) call odd(n - 1)
end
subroutine odd(n)
  integer n
  if (n > 0) call even(n - 1)
end
"""


class TestStructure:
    def test_nodes(self):
        graph = graph_of(CHAIN)
        assert set(graph.nodes) == {"main", "a", "b"}
        assert graph.main == "main"

    def test_edges(self):
        graph = graph_of(CHAIN)
        assert graph.callees("main") == ["a"]
        assert graph.callees("a") == ["b"]
        assert graph.callers("b") == ["a"]

    def test_multiple_sites_one_pair(self):
        source = CHAIN.replace("call b\n", "call b\ncall b\n")
        graph = graph_of(source)
        assert len(graph.call_sites_from("a")) == 2
        assert graph.callees("a") == ["b"]  # deduplicated view

    def test_function_calls_are_edges(self):
        source = """
program main
  n = f(1)
end
integer function f(x)
  integer x
  f = x
end
"""
        graph = graph_of(source)
        assert graph.callees("main") == ["f"]

    def test_reachable_from_main(self):
        source = CHAIN + "subroutine orphan\nx = 1\nend\n"
        graph = graph_of(source)
        assert graph.reachable_from_main() == {"main", "a", "b"}


class TestSCCs:
    def test_chain_sccs_bottom_up(self):
        graph = graph_of(CHAIN)
        sccs = graph.sccs()
        order = [scc[0] for scc in sccs]
        assert order.index("b") < order.index("a") < order.index("main")

    def test_diamond_shared_first(self):
        graph = graph_of(DIAMOND)
        order = [scc[0] for scc in graph.sccs()]
        assert order.index("shared") < order.index("left")
        assert order.index("shared") < order.index("right")
        assert order.index("left") < order.index("main")

    def test_mutual_recursion_single_scc(self):
        graph = graph_of(MUTUAL)
        sccs = graph.sccs()
        big = [scc for scc in sccs if len(scc) > 1]
        assert big == [["even", "odd"]]

    def test_self_recursion_detected(self):
        source = """
program main
  call fact(5)
end
subroutine fact(n)
  integer n
  if (n > 1) call fact(n - 1)
end
"""
        graph = graph_of(source)
        assert graph.is_recursive("fact")
        assert not graph.is_recursive("main")

    def test_mutual_recursion_detected(self):
        graph = graph_of(MUTUAL)
        assert graph.is_recursive("even")
        assert graph.is_recursive("odd")

    def test_top_down_is_reverse_of_bottom_up(self):
        graph = graph_of(DIAMOND)
        assert graph.top_down_sccs() == list(reversed(graph.bottom_up_sccs()))
