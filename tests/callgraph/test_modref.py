"""Unit tests for interprocedural MOD/REF analysis."""

from repro.callgraph import build_call_graph, compute_modref, make_call_effects
from repro.frontend import parse_program
from repro.frontend.symbols import GlobalId
from repro.ir import lower_program
from repro.analysis.ssa import ensure_global_symbols


def modref_of(source):
    lowered = lower_program(parse_program(source))
    ensure_global_symbols(lowered)
    graph = build_call_graph(lowered)
    return compute_modref(lowered, graph), lowered


class TestDirectEffects:
    def test_assigned_formal_in_mod(self):
        source = """
program main
  call s(n)
end
subroutine s(a)
  integer a
  a = 1
end
"""
        info, _ = modref_of(source)
        assert info.modifies_formal("s", "a")

    def test_read_only_formal_not_in_mod(self):
        source = """
program main
  call s(n)
end
subroutine s(a)
  integer a
  b = a
end
"""
        info, _ = modref_of(source)
        assert not info.modifies_formal("s", "a")
        assert info.references_formal("s", "a")

    def test_assigned_global_in_mod(self):
        source = """
program main
  common /c/ g
  integer g
  call s
end
subroutine s
  common /c/ h
  integer h
  h = 1
end
"""
        info, _ = modref_of(source)
        assert info.modifies_global("s", GlobalId("c", 0))

    def test_array_store_mods_array(self):
        source = """
program main
  call s(v)
  integer v(5)
end
"""
        # declarations first; rebuild correctly
        source = """
program main
  integer v(5)
  call s(v)
end
subroutine s(w)
  integer w(5)
  w(1) = 0
end
"""
        info, _ = modref_of(source)
        assert info.modifies_formal("s", "w")

    def test_read_statement_is_mod(self):
        source = """
program main
  call s(n)
end
subroutine s(a)
  integer a
  read a
end
"""
        info, _ = modref_of(source)
        assert info.modifies_formal("s", "a")


class TestTransitiveEffects:
    NEST = """
program main
  integer n
  call outer(n)
end
subroutine outer(p)
  integer p
  call inner(p)
end
subroutine inner(q)
  integer q
  q = 9
end
"""

    def test_mod_propagates_through_binding(self):
        info, _ = modref_of(self.NEST)
        assert info.modifies_formal("inner", "q")
        assert info.modifies_formal("outer", "p")

    def test_global_mod_propagates_to_callers(self):
        source = """
program main
  call middle
end
subroutine middle
  call leaf
end
subroutine leaf
  common /c/ g
  integer g
  g = 1
end
"""
        info, _ = modref_of(source)
        assert info.modifies_global("middle", GlobalId("c", 0))
        assert info.modifies_global("main", GlobalId("c", 0))

    def test_value_argument_breaks_mod_chain(self):
        source = """
program main
  integer n
  call outer(n)
end
subroutine outer(p)
  integer p
  call inner(p + 0)
end
subroutine inner(q)
  integer q
  q = 9
end
"""
        info, _ = modref_of(source)
        assert info.modifies_formal("inner", "q")
        assert not info.modifies_formal("outer", "p")

    def test_global_passed_as_actual(self):
        source = """
program main
  common /c/ g
  integer g
  call s(g)
end
subroutine s(a)
  integer a
  a = 3
end
"""
        info, _ = modref_of(source)
        assert info.modifies_global("main", GlobalId("c", 0))

    def test_recursive_mod_converges(self):
        source = """
program main
  integer n
  call rec(n, 3)
end
subroutine rec(a, d)
  integer a, d
  if (d > 0) then
    call rec(a, d - 1)
  else
    a = 0
  endif
end
"""
        info, _ = modref_of(source)
        assert info.modifies_formal("rec", "a")
        assert not info.modifies_formal("rec", "d")


class TestCallEffectsFactory:
    SRC = """
program main
  common /c/ g, h
  integer g, h
  integer n, m
  call s(n, m)
end
subroutine s(a, b)
  integer a, b
  common /c/ x, y
  integer x, y
  a = 1
  x = 2
end
"""

    def test_with_mod_kills_exact_set(self):
        info, lowered = modref_of(self.SRC)
        effects = make_call_effects(lowered, "main", info)
        call = lowered.procedure("main").call_instrs[0]
        kills = effects(call)
        killed = {symbol.name for symbol, _ in kills}
        assert killed == {"n", "g"}

    def test_without_mod_kills_all_visible(self):
        info, lowered = modref_of(self.SRC)
        effects = make_call_effects(lowered, "main", None)
        call = lowered.procedure("main").call_instrs[0]
        killed = {symbol.name for symbol, _ in effects(call)}
        assert killed == {"n", "m", "g", "h"}

    def test_bindings_describe_callee_keys(self):
        info, lowered = modref_of(self.SRC)
        effects = make_call_effects(lowered, "main", info)
        call = lowered.procedure("main").call_instrs[0]
        bindings = {binding for _, binding in effects(call)}
        assert ("formal", "a") in bindings
        assert ("global", GlobalId("c", 0)) in bindings


class TestRecursion:
    """MOD/REF must reach a fixpoint through recursive call cycles."""

    def test_direct_recursion_propagates_effects(self):
        source = """
program main
  integer n
  n = 5
  call f(n)
end
subroutine f(a)
  integer a
  if (a > 0) then
    a = a - 1
    call f(a)
  endif
end
"""
        info, _ = modref_of(source)
        assert info.modifies_formal("f", "a")
        assert info.references_formal("f", "a")

    def test_mutual_recursion_carries_mod_around_the_cycle(self):
        # g writes its formal directly; f only does so via the f→g edge,
        # and g's recursive call back to f closes the cycle the solver
        # must iterate through.
        source = """
program main
  integer n
  n = 3
  call f(n)
end
subroutine f(a)
  integer a
  call g(a)
end
subroutine g(b)
  integer b
  if (b > 0) then
    call f(b)
  endif
  b = 0
end
"""
        info, _ = modref_of(source)
        assert info.modifies_formal("g", "b")
        assert info.modifies_formal("f", "a")
        assert info.references_formal("g", "b")
        assert info.references_formal("f", "a")


class TestGlobalThroughTwoChains:
    """One COMMON slot MOD'd via one call chain and REF'd via another:
    both effects must surface in every caller on the respective chain."""

    SRC = """
program main
  common /c/ g
  integer g
  call chainw
  call chainr
end
subroutine chainw
  call leafw
end
subroutine leafw
  common /c/ w
  integer w
  w = 7
end
subroutine chainr
  call leafr
end
subroutine leafr
  common /c/ r
  integer r
  write r
end
"""

    def test_effects_at_the_leaves(self):
        info, _ = modref_of(self.SRC)
        gid = GlobalId("c", 0)
        assert info.modifies_global("leafw", gid)
        assert not info.references_global("leafw", gid)
        assert info.references_global("leafr", gid)
        assert not info.modifies_global("leafr", gid)

    def test_each_chain_carries_only_its_own_effect(self):
        info, _ = modref_of(self.SRC)
        gid = GlobalId("c", 0)
        assert info.modifies_global("chainw", gid)
        assert not info.references_global("chainw", gid)
        assert info.references_global("chainr", gid)
        assert not info.modifies_global("chainr", gid)

    def test_main_sees_both_effects(self):
        info, _ = modref_of(self.SRC)
        gid = GlobalId("c", 0)
        assert info.modifies_global("main", gid)
        assert info.references_global("main", gid)


class TestZeroFormals:
    def test_procedure_with_no_formals(self):
        source = """
program main
  common /c/ g
  integer g
  call setup
  write g
end
subroutine setup
  common /c/ x
  integer x
  x = 42
end
"""
        info, lowered = modref_of(source)
        assert lowered.procedure("setup").procedure.formals == []
        assert info.mod_formals["setup"] == set()
        assert info.ref_formals["setup"] == set()
        assert info.modifies_global("setup", GlobalId("c", 0))
