"""Process-pool behaviours of the fault-tolerant executor: real worker
deaths (``os._exit`` via chaos ``kill``) and wall-clock timeouts.

Marked ``slow``: each test pays process-pool startup, and the timeout
test deliberately burns its full wall-clock budget.
"""

import multiprocessing
import time

import pytest

from repro.core.config import AnalysisConfig, JumpFunctionKind
from repro.resilience.chaos import ChaosSpec, Fault
from repro.resilience.errors import FailureKind, Stage
from repro.resilience.executor import SweepPolicy, run_sweep

pytestmark = pytest.mark.slow

GOOD = (
    "program m\nn = 5\ncall s(n)\nend\n"
    "subroutine s(a)\ninteger a\nwrite a\nend\n"
)
OTHER = (
    "program m\nk = 7\ncall t(k)\nend\n"
    "subroutine t(b)\ninteger b\nwrite b * 3\nend\n"
)

CONFIGS = {
    "pass_through": AnalysisConfig(),
    "literal": AnalysisConfig(jump_function=JumpFunctionKind.LITERAL),
}


def _fast_policy(**kwargs) -> SweepPolicy:
    return SweepPolicy(backoff_base=0.0, **kwargs)


class TestWorkerDeath:
    def test_killed_worker_breaks_pool_then_culprit_is_quarantined(self):
        # the worker calls os._exit(17) mid-task: the parent sees a
        # BrokenProcessPool, drops to one-task-per-pool isolation, and
        # only the killer accumulates strikes
        spec = ChaosSpec(
            faults=(Fault(stage=Stage.SOLVE, kind="kill", program="killer"),)
        )
        outcome = run_sweep(
            {"innocent": GOOD, "killer": OTHER},
            CONFIGS,
            _fast_policy(processes=2, max_retries=1, chaos=spec),
        )
        assert outcome.quarantined == ("killer",)
        assert set(outcome.summaries["innocent"]) == set(CONFIGS)
        lost = [
            r for r in outcome.failures_for("killer") if not r.quarantined
        ]
        assert lost
        assert all(r.kind is FailureKind.WORKER_LOST for r in lost)

    def test_transient_kill_retried_to_success(self):
        spec = ChaosSpec(
            faults=(
                Fault(
                    stage=Stage.SOLVE, kind="kill", program="flaky",
                    max_attempt=1,
                ),
            )
        )
        outcome = run_sweep(
            {"flaky": GOOD},
            CONFIGS,
            _fast_policy(processes=1, max_retries=2, chaos=spec),
        )
        assert outcome.quarantined == ()
        assert set(outcome.summaries["flaky"]) == set(CONFIGS)
        assert outcome.retries >= 1


class TestTimeout:
    def test_hung_task_becomes_timeout_record(self):
        spec = ChaosSpec(
            faults=(
                Fault(
                    stage=Stage.SOLVE, kind="sleep", program="hung",
                    sleep_seconds=30.0,
                ),
            )
        )
        outcome = run_sweep(
            {"hung": GOOD, "healthy": OTHER},
            CONFIGS,
            _fast_policy(
                processes=2, task_timeout=2.0, max_retries=0, chaos=spec
            ),
        )
        assert outcome.quarantined == ("hung",)
        assert set(outcome.summaries["healthy"]) == set(CONFIGS)
        records = outcome.failures_for("hung")
        assert any(r.kind is FailureKind.TIMEOUT for r in records)

    def test_timed_out_workers_are_terminated_not_orphaned(self):
        # the hung worker sleeps far past the budget; cancel() cannot stop
        # a running future, so before the fix the worker survived the
        # sweep as an orphan, burning CPU for the rest of its 30 seconds
        spec = ChaosSpec(
            faults=(
                Fault(
                    stage=Stage.SOLVE, kind="sleep", program="hung",
                    sleep_seconds=30.0,
                ),
            )
        )
        outcome = run_sweep(
            {"hung": GOOD},
            CONFIGS,
            _fast_policy(
                processes=1, task_timeout=1.0, max_retries=0, chaos=spec
            ),
        )
        assert outcome.quarantined == ("hung",)
        # terminate-then-join already ran inside the sweep; allow a short
        # grace for process reaping, then require every child gone
        deadline = time.monotonic() + 10.0
        while multiprocessing.active_children():
            if time.monotonic() > deadline:
                break
            time.sleep(0.05)
        assert multiprocessing.active_children() == []

    def test_worker_cache_counters_reported_from_workers(self):
        outcome = run_sweep(
            {"good": GOOD, "other": OTHER},
            CONFIGS,
            _fast_policy(processes=2),
        )
        assert outcome.complete
        # each worker built stage 0 once per program, then hit its own cache
        assert outcome.cache_counters["stage0_cache_misses"] == 2
        assert outcome.cache_counters["stage0_cache_hits"] == 2
