"""The chaos harness itself: matching, caps, and seeded determinism."""

import pytest

from repro.resilience import chaos
from repro.resilience.chaos import ChaosError, ChaosSpec, ChaosWorkerLoss, Fault
from repro.resilience.errors import Stage


def _fire_pattern(seed: int, probability: float, rolls: int = 32) -> list[bool]:
    injector = chaos._Injector(
        ChaosSpec(
            seed=seed,
            faults=(
                Fault(
                    stage=Stage.SOLVE, kind="crash", probability=probability
                ),
            ),
        ),
        label="prog",
    )
    pattern = []
    for _ in range(rolls):
        try:
            injector.point(Stage.SOLVE)
            pattern.append(False)
        except ChaosError:
            pattern.append(True)
    return pattern


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        assert _fire_pattern(7, 0.4) == _fire_pattern(7, 0.4)

    def test_different_seed_different_decisions(self):
        assert _fire_pattern(7, 0.4) != _fire_pattern(8, 0.4)

    def test_probability_actually_mixes(self):
        pattern = _fire_pattern(3, 0.5)
        assert any(pattern) and not all(pattern)

    def test_probability_bounds(self):
        assert not any(_fire_pattern(1, 0.0))
        assert all(_fire_pattern(1, 1.0))


class TestMatching:
    def test_program_filter(self):
        spec = ChaosSpec(
            faults=(Fault(stage=Stage.SSA, kind="crash", program="bad"),)
        )
        chaos.install(spec, label="good")
        try:
            chaos.chaos_point(Stage.SSA)  # wrong program: no fire
            chaos.set_task("bad")
            with pytest.raises(ChaosError):
                chaos.chaos_point(Stage.SSA)
        finally:
            chaos.uninstall()

    def test_scope_filter(self):
        spec = ChaosSpec(
            faults=(
                Fault(stage=Stage.SOLVE, kind="crash", scope="dense"),
            )
        )
        chaos.install(spec, label="p")
        try:
            chaos.chaos_point(Stage.SOLVE, scope="sparse")
            with pytest.raises(ChaosError):
                chaos.chaos_point(Stage.SOLVE, scope="dense")
        finally:
            chaos.uninstall()

    def test_max_firings_caps_injection(self):
        spec = ChaosSpec(
            faults=(
                Fault(stage=Stage.SOLVE, kind="crash", max_firings=1),
            )
        )
        chaos.install(spec, label="p")
        try:
            with pytest.raises(ChaosError):
                chaos.chaos_point(Stage.SOLVE)
            chaos.chaos_point(Stage.SOLVE)  # cap reached: silent
        finally:
            chaos.uninstall()

    def test_max_attempt_models_transient_faults(self):
        spec = ChaosSpec(
            faults=(Fault(stage=Stage.SOLVE, kind="kill", max_attempt=1),)
        )
        chaos.install(spec, label="p", attempt=0)
        try:
            with pytest.raises(ChaosWorkerLoss):
                chaos.chaos_point(Stage.SOLVE)
            chaos.set_task("p", attempt=1)
            chaos.chaos_point(Stage.SOLVE)  # retry survives
        finally:
            chaos.uninstall()

    def test_uninstalled_hooks_are_free(self):
        chaos.uninstall()
        chaos.chaos_point(Stage.SOLVE)  # no-op, no error
        chaos.maybe_corrupt_stage0(object())

    def test_worker_loss_is_base_exception(self):
        # the driver's broad `except Exception` fallbacks must never be
        # able to swallow a simulated worker death
        assert not issubclass(ChaosWorkerLoss, Exception)
        assert issubclass(ChaosWorkerLoss, BaseException)
