"""The failure taxonomy: stage classification, CLI rendering, records."""

import pytest

from repro import analyze
from repro.resilience.errors import (
    BudgetExhaustedError,
    DegradationRecord,
    FailureKind,
    FailureRecord,
    Stage,
    classify_exception,
    format_cli_error,
)


class TestClassifyException:
    def test_tagged_stage_is_trusted(self):
        error = BudgetExhaustedError("passes", 1, 2)
        assert classify_exception(error) is Stage.SOLVE

    def test_frontend_error_is_frontend(self):
        try:
            analyze("program p\nn = \nend\n")
        except Exception as error:
            assert classify_exception(error) is Stage.FRONTEND
        else:
            pytest.fail("malformed program parsed")

    def test_traceback_walk_finds_deepest_marker(self):
        # raise from inside a solver module so the traceback carries it
        from repro.core import solver

        try:
            solver.initial_val(None)
        except Exception as error:
            assert classify_exception(error) is Stage.SOLVE

    def test_unclassifiable_returns_none(self):
        try:
            raise ValueError("no pipeline frames")
        except ValueError as error:
            assert classify_exception(error) is None


class TestFormatCliError:
    def test_frontend_error_keeps_span(self):
        from repro.frontend.errors import FrontendError
        from repro.frontend.symbols import parse_program

        with pytest.raises(FrontendError) as exc_info:
            parse_program("program p\nn = \nend\n")
        error = exc_info.value
        rendered = format_cli_error(error)
        assert rendered.startswith("error[frontend]: ")
        if error.location is not None:
            assert str(error.location) in rendered

    def test_generic_error_shows_stage_and_type(self):
        error = BudgetExhaustedError("meets", 10, 11)
        rendered = format_cli_error(error)
        assert rendered.startswith("error[solve]: BudgetExhaustedError:")

    def test_unknown_stage_renders_internal(self):
        rendered = format_cli_error(KeyError("boom"))
        assert rendered.startswith("error[internal]:")

    def test_failure_record_renders_with_kind(self):
        # a FailureRecord fed directly (e.g. replayed from a journal)
        # must render its own kind — there is no traceback to classify
        record = FailureRecord(
            program="p", config=None, stage=Stage.SOLVE,
            kind=FailureKind.TIMEOUT, message="took 9s",
        )
        assert format_cli_error(record) == "error[solve]: timeout: took 9s"

    def test_json_roundtripped_record_keeps_its_kind(self):
        # the satellite regression: round-tripping through JSON used to
        # lose the kind because the renderer re-classified from a
        # traceback the rebuilt record no longer has
        live = FailureRecord.from_exception(
            "p", "literal", BudgetExhaustedError("passes", 1, 2)
        )
        rebuilt = FailureRecord.from_json(live.to_json())
        rendered = format_cli_error(rebuilt)
        assert "budget" in rendered
        assert rendered == format_cli_error(live)

    def test_stageless_record_renders_internal(self):
        record = FailureRecord(
            program="p", config=None, stage=None,
            kind=FailureKind.CRASH, message="m",
        )
        assert format_cli_error(record) == "error[internal]: crash: m"

    def test_service_error_renders_its_code(self):
        from repro.resilience.errors import (
            CODE_SERVICE_RATE_LIMITED,
            ServiceError,
        )

        error = ServiceError(
            CODE_SERVICE_RATE_LIMITED, "rate-limited", "tenant over budget"
        )
        rendered = format_cli_error(error)
        assert rendered == "error[service]: RL551: tenant over budget"


class TestRecords:
    def test_failure_record_roundtrips_json(self):
        record = FailureRecord(
            program="trfd",
            config="polynomial",
            stage=Stage.SOLVE,
            kind=FailureKind.TIMEOUT,
            message="took too long",
            attempt=1,
            quarantined=True,
            elapsed=1.5,
        )
        assert FailureRecord.from_json(record.to_json()) == record

    def test_from_exception_classifies_budget(self):
        record = FailureRecord.from_exception(
            "p", "literal", BudgetExhaustedError("passes", 1, 2)
        )
        assert record.kind is FailureKind.BUDGET
        assert record.stage is Stage.SOLVE
        assert "passes" in record.message

    def test_diagnostics_use_rl5xx_codes(self):
        crash = FailureRecord.from_exception("p", None, ValueError("x"))
        assert crash.diagnostic().code == "RL520"
        quarantined = FailureRecord(
            program="p", config=None, stage=None,
            kind=FailureKind.CRASH, message="m", quarantined=True,
        )
        assert quarantined.diagnostic().code == "RL524"

    def test_degradation_record_describe_and_diagnostic(self):
        record = DegradationRecord(
            code="RL510", from_label="polynomial",
            to_label="pass_through", counter="passes",
        )
        assert "polynomial->pass_through" in record.describe()
        diagnostic = record.diagnostic()
        assert diagnostic.code == "RL510"
        assert "exhausting passes" in diagnostic.message
