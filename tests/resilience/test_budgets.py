"""Resource budgets: solver fuel, the degradation ladder, and the
soundness of degraded results."""

import pytest

from repro import AnalysisConfig, JumpFunctionKind, analyze
from repro.core.driver import Stage0Cache
from repro.interp import run_program
from repro.interp.soundness import check_soundness
from repro.resilience import chaos
from repro.resilience.budgets import SolveBudget
from repro.resilience.chaos import ChaosSpec, Fault
from repro.resilience.errors import BudgetExhaustedError, Stage

#: mutual recursion: the call-graph cycle forces the solver past one
#: monotone pass, so a max_solver_passes=1 budget always exhausts.
RECURSIVE = """
program main
  integer n
  n = 3
  call ping(n, 8)
  write n
end
subroutine ping(a, b)
  integer a, b
  if (a > 0) then
    call pong(a - 1, b)
  endif
  write b
end
subroutine pong(c, d)
  integer c, d
  if (c > 0) then
    call ping(c - 1, d)
  endif
  write d
end
"""


class TestSolveBudget:
    def test_from_config_none_when_uncapped(self):
        assert SolveBudget.from_config(AnalysisConfig()) is None

    def test_check_passes_raises_past_cap(self):
        budget = SolveBudget(max_passes=2)
        budget.check_passes(2)
        with pytest.raises(BudgetExhaustedError) as exc_info:
            budget.check_passes(3)
        assert exc_info.value.counter == "passes"
        assert exc_info.value.limit == 2

    def test_describe_mentions_budgets(self):
        config = AnalysisConfig(max_solver_passes=5, max_meets=100)
        assert "budget[passes=5,meets=100]" in config.describe()


class TestDegradationLadder:
    def test_pathological_workload_exhausts_passes(self):
        baseline = analyze(RECURSIVE, cache=Stage0Cache())
        assert baseline.solved.passes > 1  # the budget below must blow

        result = analyze(
            RECURSIVE,
            AnalysisConfig(
                jump_function=JumpFunctionKind.POLYNOMIAL,
                max_solver_passes=1,
            ),
            cache=Stage0Cache(),
        )
        assert result.degradations  # never silent
        first = result.degradations[0]
        assert first.code == "RL510"
        assert first.from_label == "polynomial"
        assert first.counter == "passes"

    def test_degraded_result_is_sound(self):
        """Satellite: whatever rung (or the floor) the budget forces,
        CONSTANTS claims must still hold on a real execution."""
        result = analyze(
            RECURSIVE,
            AnalysisConfig(max_solver_passes=1),
            cache=Stage0Cache(),
        )
        assert result.degradations
        trace = run_program(RECURSIVE)
        assert check_soundness(result, trace) == []

    def test_floor_reached_when_every_rung_exhausts(self):
        result = analyze(
            RECURSIVE,
            AnalysisConfig(
                jump_function=JumpFunctionKind.POLYNOMIAL, max_meets=0
            ),
            cache=Stage0Cache(),
        )
        codes = [record.code for record in result.degradations]
        assert codes[-1] == "RL512"
        assert result.degradations[-1].to_label == "intraprocedural-baseline"
        # the floor is the Table 3 baseline: bottom everywhere, still a result
        assert result.solved.reached == set(result.solved.val)

    def test_no_degrade_raises(self):
        with pytest.raises(BudgetExhaustedError):
            analyze(
                RECURSIVE,
                AnalysisConfig(max_solver_passes=1, degrade_on_budget=False),
                cache=Stage0Cache(),
            )

    def test_stats_report_lists_degradations(self):
        result = analyze(
            RECURSIVE,
            AnalysisConfig(max_solver_passes=1),
            cache=Stage0Cache(),
        )
        report = result.stats_report()
        assert "resilience:" in report
        assert "RL510" in report

    def test_unbudgeted_run_records_nothing(self):
        result = analyze(RECURSIVE, cache=Stage0Cache())
        assert result.degradations == ()


class TestSparseDenseFallback:
    def test_sparse_crash_falls_back_to_dense(self):
        clean = analyze(RECURSIVE, cache=Stage0Cache())
        spec = ChaosSpec(
            faults=(
                Fault(stage=Stage.SOLVE, kind="crash", scope="sparse"),
            )
        )
        chaos.install(spec, label="recursive")
        try:
            result = analyze(RECURSIVE, cache=Stage0Cache())
        finally:
            chaos.uninstall()
        codes = [record.code for record in result.degradations]
        assert codes == ["RL511"]
        # the dense reference solver computes the same fixpoint
        assert result.solved.val == clean.solved.val
        assert result.constants_found == clean.constants_found

    def test_fallback_disabled_raises(self):
        spec = ChaosSpec(
            faults=(
                Fault(stage=Stage.SOLVE, kind="crash", scope="sparse"),
            )
        )
        chaos.install(spec, label="recursive")
        try:
            with pytest.raises(chaos.ChaosError):
                analyze(
                    RECURSIVE,
                    AnalysisConfig(solver_fallback=False),
                    cache=Stage0Cache(),
                )
        finally:
            chaos.uninstall()
