"""The fault-tolerant sweep executor, driven by the chaos harness.

Everything here runs in-process (fast, deterministic); the process-pool
behaviours (real worker kills, wall-clock timeouts) live in
``test_executor_process.py`` under the ``slow`` marker.
"""

import pytest

from repro.core.config import AnalysisConfig, JumpFunctionKind
from repro.core.driver import GLOBAL_STAGE0_CACHE, SweepError, sweep_programs
from repro.resilience import chaos
from repro.resilience.chaos import ChaosSpec, Fault
from repro.resilience.errors import FailureKind, Stage
from repro.resilience.executor import SweepPolicy, run_sweep
from repro.resilience.journal import SweepJournal, sweep_fingerprint

GOOD = (
    "program m\nn = 5\ncall s(n)\nend\n"
    "subroutine s(a)\ninteger a\nwrite a\nend\n"
)
OTHER = (
    "program m\nk = 7\ncall t(k)\nend\n"
    "subroutine t(b)\ninteger b\nwrite b * 3\nend\n"
)

CONFIGS = {
    "pass_through": AnalysisConfig(),
    "literal": AnalysisConfig(jump_function=JumpFunctionKind.LITERAL),
}


@pytest.fixture(autouse=True)
def _clean_state():
    """Chaos corruption poisons live cache entries; never leak them."""
    GLOBAL_STAGE0_CACHE.clear()
    yield
    chaos.uninstall()
    GLOBAL_STAGE0_CACHE.clear()


def _no_backoff(monkeypatch):
    monkeypatch.setattr("repro.resilience.executor._sleep", lambda _: None)


class TestIsolation:
    def test_one_crashing_program_spares_the_rest(self, monkeypatch):
        _no_backoff(monkeypatch)
        spec = ChaosSpec(
            faults=(Fault(stage=Stage.SSA, kind="crash", program="bad"),)
        )
        outcome = run_sweep(
            {"good": GOOD, "bad": OTHER, "also_good": GOOD + "\n"},
            CONFIGS,
            SweepPolicy(max_retries=1, chaos=spec),
        )
        assert set(outcome.summaries["good"]) == set(CONFIGS)
        assert set(outcome.summaries["also_good"]) == set(CONFIGS)
        assert outcome.summaries["bad"] == {}
        assert outcome.quarantined == ("bad",)
        records = outcome.failures_for("bad")
        assert records
        assert all(
            r.stage is Stage.SSA for r in records if not r.quarantined
        )
        assert records[-1].quarantined
        assert records[-1].diagnostic().code == "RL524"

    def test_one_crashing_config_spares_other_cells(self, monkeypatch):
        _no_backoff(monkeypatch)
        # a transient SUBSTITUTE crash (first attempt only): the first
        # config's cell fails, the same task's later cells still fill,
        # and the retry completes the failed cell
        spec = ChaosSpec(
            faults=(
                Fault(
                    stage=Stage.SUBSTITUTE, kind="crash", program="bad",
                    max_firings=1, max_attempt=1,
                ),
            )
        )
        outcome = run_sweep(
            {"good": GOOD, "bad": OTHER},
            CONFIGS,
            SweepPolicy(max_retries=1, chaos=spec),
        )
        # the single firing killed one cell; the retry completed it
        assert set(outcome.summaries["bad"]) == set(CONFIGS)
        assert outcome.quarantined == ()
        assert outcome.retries == 1
        failed = outcome.failures_for("bad")
        assert len(failed) == 1
        assert failed[0].kind is FailureKind.CRASH
        assert failed[0].stage is Stage.SUBSTITUTE

    def test_parse_failure_fails_every_cell_at_once(self, monkeypatch):
        _no_backoff(monkeypatch)
        outcome = run_sweep(
            {"good": GOOD, "bad": "program p\nn = \nend\n"},
            CONFIGS,
            SweepPolicy(max_retries=0),
        )
        assert set(outcome.summaries["good"]) == set(CONFIGS)
        records = [r for r in outcome.failures_for("bad") if not r.quarantined]
        assert {r.config for r in records} == set(CONFIGS)
        assert all(r.stage is Stage.FRONTEND for r in records)


class TestRetry:
    def test_transient_worker_loss_is_retried(self, monkeypatch):
        _no_backoff(monkeypatch)
        spec = ChaosSpec(
            faults=(
                Fault(
                    stage=Stage.SOLVE, kind="kill", program="flaky",
                    max_attempt=1,
                ),
            )
        )
        outcome = run_sweep(
            {"flaky": GOOD},
            CONFIGS,
            SweepPolicy(max_retries=2, chaos=spec),
        )
        # attempt 0 died, attempt 1 survived (max_attempt gates the fault)
        assert set(outcome.summaries["flaky"]) == set(CONFIGS)
        assert outcome.quarantined == ()
        # the recovered sweep is complete — the transient failure stays
        # on the record without demoting the result to partial
        assert outcome.complete
        assert outcome.retries == 1
        lost = outcome.failures_for("flaky")
        assert len(lost) == 1
        assert lost[0].kind is FailureKind.WORKER_LOST

    def test_backoff_delays_grow_exponentially(self, monkeypatch):
        delays = []
        monkeypatch.setattr(
            "repro.resilience.executor._sleep", delays.append
        )
        spec = ChaosSpec(
            faults=(Fault(stage=Stage.SSA, kind="crash", program="bad"),)
        )
        run_sweep(
            {"bad": GOOD},
            CONFIGS,
            SweepPolicy(
                max_retries=3, backoff_base=0.1, backoff_cap=0.25,
                chaos=spec,
            ),
        )
        assert delays == [0.1, 0.2, 0.25]  # doubled, then capped

    def test_corrupted_stage0_cache_quarantines(self, monkeypatch):
        _no_backoff(monkeypatch)
        spec = ChaosSpec(
            faults=(
                Fault(stage=Stage.LOWERING, kind="corrupt", program="bad"),
            )
        )
        outcome = run_sweep(
            {"good": GOOD, "bad": OTHER},
            CONFIGS,
            SweepPolicy(max_retries=1, chaos=spec),
        )
        assert set(outcome.summaries["good"]) == set(CONFIGS)
        assert outcome.quarantined == ("bad",)


class TestJournal:
    def test_interrupted_sweep_resumes_from_journal(self, tmp_path, monkeypatch):
        _no_backoff(monkeypatch)
        journal_path = str(tmp_path / "sweep.jsonl")
        sources = {"good": GOOD, "bad": OTHER}
        spec = ChaosSpec(
            faults=(Fault(stage=Stage.SSA, kind="crash", program="bad"),)
        )
        first = run_sweep(
            sources,
            CONFIGS,
            SweepPolicy(max_retries=0, chaos=spec, journal_path=journal_path),
        )
        assert first.quarantined == ("bad",)
        assert set(first.summaries["good"]) == set(CONFIGS)

        # "fix the crash" (no chaos) and rerun against the same journal:
        # good's cells come straight from disk, only bad executes.
        second = run_sweep(
            sources,
            CONFIGS,
            SweepPolicy(journal_path=journal_path),
        )
        assert second.complete
        assert second.resumed_cells == len(CONFIGS)
        assert second.executed_cells == len(CONFIGS)
        assert set(second.summaries["bad"]) == set(CONFIGS)
        # resumed cells carry the same numbers the live run produced
        for name in CONFIGS:
            assert (
                second.summaries["good"][name].constants_found
                == first.summaries["good"][name].constants_found
            )

    def test_foreign_fingerprint_restarts_fresh(self, tmp_path):
        journal_path = str(tmp_path / "sweep.jsonl")
        journal = SweepJournal(journal_path)
        journal.load(sweep_fingerprint({"x": "1"}, {"c": AnalysisConfig()}))
        outcome = run_sweep(
            {"good": GOOD},
            CONFIGS,
            SweepPolicy(journal_path=journal_path),
        )
        assert outcome.resumed_cells == 0
        assert outcome.complete

    def test_torn_final_line_is_tolerated(self, tmp_path):
        journal_path = str(tmp_path / "sweep.jsonl")
        sources = {"good": GOOD}
        run_sweep(sources, CONFIGS, SweepPolicy(journal_path=journal_path))
        with open(journal_path, "a") as handle:
            handle.write('{"kind": "cell", "progr')  # the crash case
        outcome = run_sweep(
            sources, CONFIGS, SweepPolicy(journal_path=journal_path)
        )
        assert outcome.resumed_cells == len(CONFIGS)
        assert outcome.executed_cells == 0


class TestLegacyFacade:
    def test_sweep_programs_raises_typed_error_on_failure(self):
        with pytest.raises(SweepError) as exc_info:
            sweep_programs(
                {"bad": "program p\nn = \nend\n"},
                {"default": AnalysisConfig()},
            )
        outcome = exc_info.value.outcome
        assert outcome.failures
        assert outcome.failures[0].stage is Stage.FRONTEND

    def test_summary_reports_worker_cache_deltas(self):
        GLOBAL_STAGE0_CACHE.clear()
        swept = sweep_programs({"good": GOOD}, CONFIGS)
        cells = list(swept["good"].values())
        # in-process: the first config misses, the second hits the cache
        assert sum(c.cache_counters["stage0_cache_misses"] for c in cells) == 1
        assert sum(c.cache_counters["stage0_cache_hits"] for c in cells) == 1


class TestDegradationsInSweep:
    def test_budgeted_cells_surface_degradations(self):
        configs = {
            "budgeted": AnalysisConfig(max_meets=0),
            "healthy": AnalysisConfig(),
        }
        outcome = run_sweep({"good": GOOD}, configs, SweepPolicy())
        assert outcome.complete  # degradation is not failure
        budgeted = outcome.summaries["good"]["budgeted"]
        assert any("RL51" in d for d in budgeted.degradations)
        assert outcome.summaries["good"]["healthy"].degradations == ()
        assert outcome.degradation_count() >= 1
