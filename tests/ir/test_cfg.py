"""Unit tests for basic blocks and CFG structure."""

from repro.ir.cfg import ControlFlowGraph
from repro.ir.instructions import (
    CJump,
    Copy,
    Jump,
    Phi,
    Return,
    Stop,
    Temp,
    bool_const,
    int_const,
)


def make_diamond():
    """entry -> (left | right) -> join -> exit."""
    cfg = ControlFlowGraph()
    entry = cfg.new_block()
    cfg.entry_id = entry.id
    exit_block = cfg.new_block()
    exit_block.append(Return())
    cfg.exit_id = exit_block.id
    left = cfg.new_block()
    right = cfg.new_block()
    join = cfg.new_block()
    entry.append(CJump(cond=bool_const(True), if_true=left.id, if_false=right.id))
    left.append(Jump(join.id))
    right.append(Jump(join.id))
    join.append(Jump(exit_block.id))
    cfg.refresh()
    return cfg, entry, left, right, join, exit_block


class TestBlocks:
    def test_successors_of_jump(self):
        cfg = ControlFlowGraph()
        a = cfg.new_block()
        b = cfg.new_block()
        a.append(Jump(b.id))
        assert a.successors() == [b.id]

    def test_successors_of_cjump(self):
        cfg, entry, left, right, *_ = make_diamond()
        assert set(entry.successors()) == {left.id, right.id}

    def test_cjump_same_target_single_successor(self):
        cfg = ControlFlowGraph()
        a = cfg.new_block()
        b = cfg.new_block()
        a.append(CJump(cond=bool_const(True), if_true=b.id, if_false=b.id))
        assert a.successors() == [b.id]

    def test_return_has_no_successors(self):
        cfg = ControlFlowGraph()
        a = cfg.new_block()
        a.append(Return())
        assert a.successors() == []

    def test_stop_has_no_successors(self):
        cfg = ControlFlowGraph()
        a = cfg.new_block()
        a.append(Stop())
        assert a.successors() == []

    def test_terminator_detection(self):
        cfg = ControlFlowGraph()
        a = cfg.new_block()
        assert not a.is_terminated
        a.append(Copy(src=int_const(1), result=Temp(0)))
        assert not a.is_terminated
        a.append(Return())
        assert a.is_terminated

    def test_phis_prefix(self):
        cfg = ControlFlowGraph()
        a = cfg.new_block()
        phi = Phi(incoming={0: int_const(1)}, result=Temp(0))
        a.instrs = [phi, Copy(src=int_const(2), result=Temp(1)), Return()]
        assert a.phis() == [phi]
        assert len(a.non_phi_instrs()) == 2


class TestGraph:
    def test_predecessors(self):
        cfg, entry, left, right, join, exit_block = make_diamond()
        assert sorted(join.preds) == sorted([left.id, right.id])
        assert exit_block.preds == [join.id]

    def test_reachable_ids(self):
        cfg, entry, *_ = make_diamond()
        unreachable = cfg.new_block()
        unreachable.append(Return())
        assert unreachable.id not in cfg.reachable_ids()
        assert entry.id in cfg.reachable_ids()

    def test_reverse_postorder_starts_at_entry(self):
        cfg, entry, *_ = make_diamond()
        order = cfg.reverse_postorder()
        assert order[0] == entry.id

    def test_reverse_postorder_preds_before_succs_in_dag(self):
        cfg, entry, left, right, join, exit_block = make_diamond()
        order = cfg.reverse_postorder()
        position = {bid: i for i, bid in enumerate(order)}
        assert position[entry.id] < position[left.id]
        assert position[left.id] < position[join.id]
        assert position[right.id] < position[join.id]
        assert position[join.id] < position[exit_block.id]

    def test_remove_unreachable_keeps_exit(self):
        cfg = ControlFlowGraph()
        entry = cfg.new_block()
        cfg.entry_id = entry.id
        exit_block = cfg.new_block()
        exit_block.append(Return())
        cfg.exit_id = exit_block.id
        entry.append(Stop())  # exit unreachable
        dead = cfg.new_block()
        dead.append(Jump(exit_block.id))
        removed = cfg.remove_unreachable()
        assert dead.id in removed
        assert exit_block.id in cfg.blocks

    def test_remove_unreachable_prunes_phi_inputs(self):
        cfg = ControlFlowGraph()
        entry = cfg.new_block()
        cfg.entry_id = entry.id
        exit_block = cfg.new_block()
        cfg.exit_id = exit_block.id
        dead = cfg.new_block()
        dead.append(Jump(exit_block.id))
        entry.append(Jump(exit_block.id))
        phi = Phi(incoming={entry.id: int_const(1), dead.id: int_const(2)},
                  result=Temp(0))
        exit_block.instrs = [phi, Return()]
        cfg.remove_unreachable()
        assert list(phi.incoming) == [entry.id]

    def test_instructions_iterates_in_block_order(self):
        cfg, *_ = make_diamond()
        pairs = list(cfg.instructions())
        block_ids = [block.id for block, _ in pairs]
        assert block_ids == sorted(block_ids)
