"""Unit tests for AST → IR lowering."""

import pytest

from repro.frontend import parse_program
from repro.frontend.astnodes import Type
from repro.frontend.errors import SemanticError
from repro.ir.instructions import (
    Argument,
    ArgumentKind,
    BinOp,
    Call,
    CJump,
    Const,
    Convert,
    Copy,
    IntrinsicOp,
    Jump,
    LoadArr,
    ReadArr,
    ReadVar,
    Return,
    Stop,
    StoreArr,
    Temp,
    UnOp,
    VarDef,
    VarUse,
    WriteOut,
)
from repro.ir.lower import lower_program, operand_type


def lower_main(body_lines, extra_units=""):
    source = "program t\n" + "\n".join(body_lines) + "\nend\n" + extra_units
    lowered = lower_program(parse_program(source))
    return lowered.procedure("t")


def instrs_of(lowered_proc, kind):
    return [i for _, i in lowered_proc.cfg.instructions() if isinstance(i, kind)]


class TestStraightLine:
    def test_assign_constant(self):
        proc = lower_main(["n = 42"])
        copies = instrs_of(proc, Copy)
        assert len(copies) == 1
        assert isinstance(copies[0].src, Const)
        assert copies[0].src.value == 42
        assert isinstance(copies[0].dest, VarDef)
        assert copies[0].dest.symbol.name == "n"

    def test_assign_expression_uses_temp(self):
        proc = lower_main(["n = 1 + 2 * 3"])
        binops = instrs_of(proc, BinOp)
        assert [b.op for b in binops] == ["*", "+"]
        assert all(isinstance(b.dest, Temp) for b in binops)

    def test_temps_single_assignment(self):
        proc = lower_main(["a = 1 + 2", "b = 3 * 4", "c = a - b"])
        defined = [i.dest for _, i in proc.cfg.instructions()
                   if isinstance(i.dest, Temp)]
        assert len(defined) == len(set(defined))

    def test_var_use_carries_span(self):
        source = "program t\nn = 1\nm = n + 2\nend\n"
        lowered = lower_program(parse_program(source))
        proc = lowered.procedure("t")
        uses = [u for _, i in proc.cfg.instructions() for u in i.uses()
                if isinstance(u, VarUse)]
        assert any(u.span.extract(source) == "n" for u in uses)

    def test_named_constant_folds_to_literal(self):
        proc = lower_main(["parameter (k = 7)", "n = k"])
        copies = instrs_of(proc, Copy)
        assert copies[0].src == Const(7, Type.INTEGER)

    def test_mixed_assignment_inserts_convert(self):
        proc = lower_main(["x = 1"])  # x implicitly REAL
        converts = instrs_of(proc, Convert)
        assert len(converts) == 1
        assert converts[0].to_type is Type.REAL

    def test_int_from_real_expression_converts(self):
        proc = lower_main(["n = 2.5"])
        converts = instrs_of(proc, Convert)
        assert converts[0].to_type is Type.INTEGER

    def test_unary_minus(self):
        proc = lower_main(["n = -3"])
        unops = instrs_of(proc, UnOp)
        assert unops[0].op == "-"

    def test_intrinsic_call(self):
        proc = lower_main(["n = mod(10, 3)"])
        intrinsics = instrs_of(proc, IntrinsicOp)
        assert intrinsics[0].name == "mod"
        assert operand_type(intrinsics[0].dest) is Type.INTEGER

    def test_write_statement(self):
        proc = lower_main(["write 1, 'msg'"])
        writes = instrs_of(proc, WriteOut)
        assert len(writes[0].values) == 2

    def test_read_scalar(self):
        proc = lower_main(["read n"])
        reads = instrs_of(proc, ReadVar)
        assert reads[0].target.symbol.name == "n"

    def test_read_array_element(self):
        proc = lower_main(["integer a(5)", "read a(2)"])
        reads = instrs_of(proc, ReadArr)
        assert reads[0].array.name == "a"

    def test_stop(self):
        proc = lower_main(["stop"])
        assert instrs_of(proc, Stop)


class TestArrays:
    def test_array_store(self):
        proc = lower_main(["integer a(5)", "a(3) = 9"])
        stores = instrs_of(proc, StoreArr)
        assert stores[0].array.name == "a"

    def test_array_load(self):
        proc = lower_main(["integer a(5)", "n = a(1)"])
        loads = instrs_of(proc, LoadArr)
        assert loads[0].array.name == "a"
        assert isinstance(loads[0].dest, Temp)


class TestControlFlow:
    def test_if_creates_diamond(self):
        proc = lower_main(["if (n > 0) then", "m = 1", "else", "m = 2", "endif"])
        cjumps = instrs_of(proc, CJump)
        assert len(cjumps) == 1
        assert cjumps[0].if_true != cjumps[0].if_false

    def test_if_without_else(self):
        proc = lower_main(["if (n > 0) then", "m = 1", "endif", "m = 3"])
        cjumps = instrs_of(proc, CJump)
        assert len(cjumps) == 1

    def test_do_loop_has_header_cycle(self):
        proc = lower_main(["do i = 1, 3", "n = n + i", "enddo"])
        cfg = proc.cfg
        cfg.refresh()
        # some block must have a predecessor with a higher id (back edge)
        has_back_edge = any(
            pred > block.id for block in cfg.blocks.values() for pred in block.preds
        )
        assert has_back_edge

    def test_do_loop_trip_count_clamped(self):
        proc = lower_main(["do i = 1, 0", "n = n + i", "enddo"])
        clamps = [i for i in instrs_of(proc, IntrinsicOp) if i.name == "max"]
        assert clamps

    def test_do_loop_requires_integer_induction(self):
        with pytest.raises(SemanticError, match="INTEGER"):
            lower_main(["do x = 1, 3", "n = 1", "enddo"])

    def test_do_while(self):
        proc = lower_main(["do while (n < 5)", "n = n + 1", "enddo"])
        assert instrs_of(proc, CJump)

    def test_goto_forward(self):
        proc = lower_main(["goto 10", "n = 1", "10 continue", "m = 2"])
        proc.cfg.refresh()
        # the n = 1 assignment is unreachable and must have been pruned
        copies = instrs_of(proc, Copy)
        assert all(c.dest.symbol.name != "n" for c in copies)

    def test_goto_backward(self):
        proc = lower_main(["10 continue", "n = n + 1", "if (n < 3) goto 10"])
        proc.cfg.refresh()
        has_back_edge = any(
            pred >= block.id
            for block in proc.cfg.blocks.values()
            for pred in block.preds
        )
        assert has_back_edge

    def test_return_routes_to_exit(self):
        proc = lower_main(["n = 1", "return", "n = 2"])
        exit_block = proc.cfg.exit
        assert isinstance(exit_block.instrs[-1], Return)
        copies = instrs_of(proc, Copy)
        assert len(copies) == 1  # 'n = 2' unreachable, pruned

    def test_single_exit(self):
        proc = lower_main(
            ["if (n > 0) then", "return", "else", "return", "endif"]
        )
        returns = instrs_of(proc, Return)
        assert len(returns) == 1

    def test_stop_does_not_reach_exit(self):
        proc = lower_main(["stop"])
        proc.cfg.refresh()
        assert proc.cfg.exit.preds == []

    def test_labelled_statement_reachable_both_ways(self):
        proc = lower_main(
            ["n = 0", "10 n = n + 1", "if (n < 3) goto 10"]
        )
        proc.cfg.refresh()
        label_blocks = [
            b for b in proc.cfg.blocks.values() if len(b.preds) >= 2
        ]
        assert label_blocks


class TestCalls:
    SUB = "subroutine s(a, b, v)\ninteger a, b, v(10)\na = b\nv(1) = a\nend\n"
    FUN = "integer function f(x)\ninteger x\nf = x + 1\nend\n"

    def test_subroutine_call_arguments(self):
        proc = lower_main(
            ["integer w(10)", "n = 2", "call s(n, n + 1, w)"], self.SUB
        )
        call = instrs_of(proc, Call)[0]
        kinds = [a.kind for a in call.args]
        assert kinds == [ArgumentKind.VAR, ArgumentKind.VALUE, ArgumentKind.ARRAY]

    def test_literal_argument(self):
        proc = lower_main(["integer w(10)", "call s(n, 5, w)"], self.SUB)
        call = instrs_of(proc, Call)[0]
        assert call.args[1].kind is ArgumentKind.VALUE
        assert call.args[1].value == Const(5, Type.INTEGER)

    def test_array_element_argument(self):
        proc = lower_main(
            ["integer w(10)", "call s(w(1), 2, w)"], self.SUB
        )
        call = instrs_of(proc, Call)[0]
        assert call.args[0].kind is ArgumentKind.ARRAY_ELEMENT
        assert call.args[0].symbol.name == "w"

    def test_function_call_dest(self):
        proc = lower_main(["n = f(3)"], self.FUN)
        call = instrs_of(proc, Call)[0]
        assert isinstance(call.dest, Temp)
        assert operand_type(call.dest) is Type.INTEGER

    def test_site_ids_unique_program_wide(self):
        source = (
            "program t\nn = f(1)\nm = f(2)\ncall s(n, m, w)\ninteger w(10)\nend\n"
        )
        # declarations must precede statements; rebuild properly:
        source = (
            "program t\ninteger w(10)\nn = f(1)\nm = f(2)\ncall s(n, m, w)\nend\n"
            + self.SUB
            + self.FUN
        )
        lowered = lower_program(parse_program(source))
        site_ids = list(lowered.call_sites)
        assert len(site_ids) == 3
        assert len(set(site_ids)) == 3

    def test_call_sites_map_to_callers(self):
        source = (
            "program t\ninteger w(10)\ncall s(n, 1, w)\nend\n" + self.SUB
        )
        lowered = lower_program(parse_program(source))
        (caller, call), = lowered.call_sites.values()
        assert caller == "t"
        assert call.callee == "s"

    def test_scalar_passed_for_array_formal_rejected(self):
        with pytest.raises(SemanticError, match="expects an array"):
            lower_main(["call s(n, 1, m)"], self.SUB)

    def test_array_passed_for_scalar_formal_rejected(self):
        with pytest.raises(SemanticError, match="expects a scalar"):
            lower_main(["integer w(10)", "call s(w, 1, w)"], self.SUB)

    def test_expression_for_array_formal_rejected(self):
        with pytest.raises(SemanticError, match="expects an array"):
            lower_main(["call s(n, 1, 2 + 3)"], self.SUB)


class TestLoweredProgramApi:
    def test_variables_excludes_arrays_and_constants(self):
        proc = lower_main(
            ["integer a(5)", "parameter (k = 1)", "n = k", "a(1) = n"]
        )
        names = {s.name for s in proc.variables()}
        assert "n" in names
        assert "a" not in names
        assert "k" not in names

    def test_synthetic_loop_symbols_registered(self):
        proc = lower_main(["do i = 1, n", "m = i", "enddo"])
        names = {s.name for s in proc.variables()}
        assert any(name.startswith("$count") for name in names)
