"""Tests for the IR printer (debugging output must stay trustworthy)."""

from repro.analysis.ssa import build_ssa
from repro.callgraph import build_call_graph, compute_modref, make_call_effects
from repro.frontend import parse_program
from repro.ir import format_cfg, format_instr, format_program, lower_program


SOURCE = """
program main
  integer n, m
  integer a(5)
  n = 1 + 2
  m = -n
  a(1) = mod(n, 2)
  m = a(1)
  read n
  write n, m
  if (n > 0) then
    call s(n)
  endif
  x = 1.5
  n = x
end
subroutine s(k)
  integer k
  k = twice(k)
  stop
end
integer function twice(v)
  integer v
  twice = v * 2
end
"""


def lowered():
    return lower_program(parse_program(SOURCE))


class TestInstrFormatting:
    def instrs_text(self, proc="main"):
        cfg = lowered().procedure(proc).cfg
        return [format_instr(i) for _, i in cfg.instructions()]

    def test_binop(self):
        assert "t0 = 1 + 2" in self.instrs_text()

    def test_unop(self):
        assert any("= - n" in line for line in self.instrs_text())

    def test_intrinsic(self):
        assert any("mod(n, 2)" in line for line in self.instrs_text())

    def test_array_store_and_load(self):
        lines = self.instrs_text()
        assert any(line.startswith("a(") for line in lines)
        assert any("= a(" in line for line in lines)

    def test_read_write(self):
        lines = self.instrs_text()
        assert any(line.startswith("read n") for line in lines)
        assert any(line.startswith("write n, m") for line in lines)

    def test_call_with_site(self):
        lines = self.instrs_text()
        assert any("call s(&n)" in line and "[site" in line for line in lines)

    def test_function_call_has_dest(self):
        lines = self.instrs_text("s")
        assert any("= call twice(&k)" in line for line in lines)

    def test_stop(self):
        assert "stop" in self.instrs_text("s")

    def test_convert(self):
        lines = self.instrs_text()
        assert any("(integer)" in line or "(real)" in line for line in lines)

    def test_cjump(self):
        lines = self.instrs_text()
        assert any(line.startswith("if t") and "then B" in line for line in lines)


class TestGraphFormatting:
    def test_format_cfg_headers(self):
        text = format_cfg(lowered().procedure("main").cfg, "main")
        assert text.startswith("procedure main")
        assert "B0:" in text
        assert "preds:" in text

    def test_format_program_covers_all_procs(self):
        text = format_program(lowered())
        for name in ("main", "s", "twice"):
            assert f"procedure {name}" in text

    def test_ssa_form_prints_versions_and_phis(self):
        low = lowered()
        graph = build_call_graph(low)
        modref = compute_modref(low, graph)
        effects = make_call_effects(low, "main", modref)
        ssa = build_ssa(low.procedure("main"), effects)
        text = format_cfg(ssa.cfg, "main")
        assert ".1 =" in text or ".1 " in text  # versioned names
        assert "callkill" in text  # kill pseudo-defs visible

    def test_every_instruction_formats(self):
        # no instruction may fall through to repr()
        low = lowered()
        for name in low.procedures:
            for _, instr in low.procedure(name).cfg.instructions():
                line = format_instr(instr)
                assert not line.startswith("<"), line
