"""Tests for the IR validator — and validator-backed pipeline checks."""

import pytest

from repro.analysis.dce import eliminate_dead_code
from repro.analysis.ssa import build_ssa, ensure_global_symbols
from repro.analysis.valuenum import value_number
from repro.callgraph import build_call_graph, compute_modref, make_call_effects
from repro.frontend import parse_program
from repro.ir import lower_program
from repro.ir.cfg import ControlFlowGraph
from repro.ir.instructions import Copy, Jump, Return, Temp, int_const
from repro.ir.validate import (
    IRValidationError,
    collect_problems,
    validate_cfg,
    validate_program,
)
from repro.workloads import load, suite_names


def make_minimal():
    cfg = ControlFlowGraph()
    entry = cfg.new_block()
    cfg.entry_id = entry.id
    exit_block = cfg.new_block()
    exit_block.append(Return())
    cfg.exit_id = exit_block.id
    entry.append(Jump(exit_block.id))
    cfg.refresh()
    return cfg, entry, exit_block


class TestValidator:
    def test_minimal_cfg_valid(self):
        cfg, *_ = make_minimal()
        validate_cfg(cfg)

    def test_unterminated_block_detected(self):
        cfg, entry, _ = make_minimal()
        entry.instrs = [Copy(src=int_const(1), result=Temp(0))]
        assert any("not terminated" in p for p in collect_problems(cfg))

    def test_branch_to_missing_block(self):
        cfg, entry, _ = make_minimal()
        entry.instrs = [Jump(999)]
        assert any("missing B999" in p for p in collect_problems(cfg))

    def test_double_temp_definition(self):
        cfg, entry, _ = make_minimal()
        entry.instrs = [
            Copy(src=int_const(1), result=Temp(0)),
            Copy(src=int_const(2), result=Temp(0)),
            Jump(cfg.exit_id),
        ]
        assert any("defined twice" in p for p in collect_problems(cfg))

    def test_stale_preds_detected(self):
        cfg, entry, exit_block = make_minimal()
        exit_block.preds = [42]
        assert any("preds" in p for p in collect_problems(cfg))

    def test_missing_exit_return(self):
        cfg, entry, exit_block = make_minimal()
        exit_block.instrs = [Jump(entry.id)]
        assert any("Return" in p for p in collect_problems(cfg))

    def test_validate_raises(self):
        cfg, entry, _ = make_minimal()
        entry.instrs = []
        with pytest.raises(IRValidationError):
            validate_cfg(cfg)


class TestPipelineStaysValid:
    SOURCE = """
program main
  integer n, m
  common /c/ g
  integer g
  g = 5
  n = 1
  do i = 1, 4
    n = n + i
  enddo
  if (n > 3) then
    call s(n, m)
  endif
  write n
end
subroutine s(a, b)
  integer a, b
  b = a + 1
end
"""

    def lowered(self):
        lowered = lower_program(parse_program(self.SOURCE))
        ensure_global_symbols(lowered)
        return lowered

    def test_lowering_produces_valid_ir(self):
        validate_program(self.lowered(), ssa_form=False)

    def test_ssa_produces_valid_ir(self):
        lowered = self.lowered()
        graph = build_call_graph(lowered)
        modref = compute_modref(lowered, graph)
        for name in lowered.procedures:
            effects = make_call_effects(lowered, name, modref)
            ssa = build_ssa(lowered.procedure(name), effects)
            validate_cfg(ssa.cfg, ssa_form=True, source=self.SOURCE)

    def test_dce_preserves_validity(self):
        lowered = self.lowered()
        graph = build_call_graph(lowered)
        modref = compute_modref(lowered, graph)
        for name in lowered.procedures:
            effects = make_call_effects(lowered, name, modref)
            ssa = build_ssa(lowered.procedure(name), effects)
            numbering = value_number(ssa, lowered)
            eliminate_dead_code(
                lowered.procedure(name), numbering.expr_of, {}
            )
        validate_program(lowered, ssa_form=False)

    @pytest.mark.parametrize("name", suite_names())
    def test_workloads_lower_to_valid_ir(self, name):
        workload = load(name, scale=0.3)
        lowered = lower_program(parse_program(workload.source))
        ensure_global_symbols(lowered)
        validate_program(lowered, ssa_form=False)

    @pytest.mark.parametrize("name", ["mdg", "trfd"])
    def test_workloads_ssa_valid(self, name):
        workload = load(name, scale=0.3)
        lowered = lower_program(parse_program(workload.source))
        ensure_global_symbols(lowered)
        graph = build_call_graph(lowered)
        modref = compute_modref(lowered, graph)
        for proc_name in lowered.procedures:
            effects = make_call_effects(lowered, proc_name, modref)
            ssa = build_ssa(lowered.procedure(proc_name), effects)
            validate_cfg(ssa.cfg, ssa_form=True, source=workload.source)


class TestArgumentSpans:
    """_check_span must also cover call-argument operands: the Argument
    records carry their own spans (whole-array actuals have no value
    operand at all, so Call.uses() never surfaces them)."""

    SRC = """
program main
  integer n
  integer v(5)
  n = 1
  call s(n, v, v(2))
end
subroutine s(a, w, e)
  integer a, e
  integer w(5)
  a = a + w(1) + e
end
"""

    def _lowered(self):
        lowered = lower_program(parse_program(self.SRC))
        ensure_global_symbols(lowered)
        return lowered

    def test_lowered_spans_are_valid(self):
        lowered = self._lowered()
        validate_program(lowered)

    def test_tampered_var_argument_span_detected(self):
        lowered = self._lowered()
        call = lowered.procedure("main").call_instrs[0]
        bad = call.args[1].span  # covers "v", not "n"
        call.args[0].span = bad
        problems = collect_problems(
            lowered.procedure("main").cfg, source=lowered.program.source
        )
        assert any("span of argument n" in p for p in problems)

    def test_tampered_array_argument_span_detected(self):
        lowered = self._lowered()
        call = lowered.procedure("main").call_instrs[0]
        call.args[1].span = call.args[0].span  # covers "n", not "v"
        problems = collect_problems(
            lowered.procedure("main").cfg, source=lowered.program.source
        )
        assert any("span of argument v" in p for p in problems)

    def test_array_element_span_must_start_with_name(self):
        lowered = self._lowered()
        call = lowered.procedure("main").call_instrs[0]
        call.args[2].span = call.args[0].span  # covers "n", not "v(2)"
        problems = collect_problems(
            lowered.procedure("main").cfg, source=lowered.program.source
        )
        assert any("span of argument v" in p for p in problems)

    def test_synthesized_argument_span_skipped(self):
        from repro.frontend.source import DUMMY_SPAN

        lowered = self._lowered()
        call = lowered.procedure("main").call_instrs[0]
        call.args[0].span = DUMMY_SPAN
        problems = collect_problems(
            lowered.procedure("main").cfg, source=lowered.program.source
        )
        assert problems == []
