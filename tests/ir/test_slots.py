"""Hot classes carry ``__slots__``: a per-instance ``__dict__`` costs
~100 bytes and a pointer chase on every attribute read, and the IR and
solver allocate these classes by the hundred-thousand on the large
workload tier."""

import dataclasses
import inspect

import pytest

from repro.analysis.ssa import ensure_global_symbols
from repro.core.engine import BindingEdge
from repro.core.parallel import RegionOutcome
from repro.core.slab import SlabSegment
from repro.core.solver import SolveResult, WarmStart
from repro.frontend import parse_program
from repro.ir import instructions, lower_program

SOURCE = """
program m
  integer v(3)
  common /c/ g
  integer g
  g = 2
  v(1) = 7
  call s(g + 1, v)
  write g
end
subroutine s(a, w)
  integer a
  integer w(3)
  if (a > 0) then
    a = a - 1
  endif
  write w(1)
end
"""


def instruction_dataclasses():
    return [
        obj
        for _, obj in inspect.getmembers(instructions, inspect.isclass)
        if dataclasses.is_dataclass(obj) and obj.__module__ == instructions.__name__
    ]


class TestInstructionSlots:
    def test_every_ir_dataclass_is_slotted(self):
        classes = instruction_dataclasses()
        assert len(classes) >= 20  # operands + the full instruction set
        unslotted = [
            klass.__name__
            for klass in classes
            if "__slots__" not in klass.__dict__
        ]
        assert unslotted == []

    def test_lowered_instances_have_no_dict(self):
        lowered = lower_program(parse_program(SOURCE))
        ensure_global_symbols(lowered)
        seen = 0
        for proc in lowered.procedures.values():
            for block in proc.cfg.blocks.values():
                for instr in block.instrs:
                    assert not hasattr(instr, "__dict__"), type(instr)
                    seen += 1
        assert seen > 10

    def test_operands_have_no_dict(self):
        for operand in (
            instructions.Const(3, "integer"),
            instructions.Temp(1),
            instructions.VarUse("x"),
            instructions.SSAName("x", 2),
        ):
            assert not hasattr(operand, "__dict__"), type(operand)


class TestSolverSlots:
    def test_solver_dataclasses_are_slotted(self):
        for klass in (SolveResult, WarmStart, BindingEdge, SlabSegment, RegionOutcome):
            assert "__slots__" in klass.__dict__, klass.__name__

    def test_solve_result_instance_has_no_dict(self):
        result = SolveResult(val={})
        assert not hasattr(result, "__dict__")
        with pytest.raises(AttributeError):
            result.arbitrary_new_attribute = 1
