"""Unit tests for SSA construction."""

from repro.analysis.ssa import build_ssa, ensure_global_symbols
from repro.callgraph import build_call_graph, compute_modref, make_call_effects
from repro.frontend import parse_program
from repro.ir import lower_program
from repro.ir.instructions import Call, CallKill, Copy, Phi, SSAName, VarDef


def ssa_of(source, proc="t", use_mod=True):
    lowered = lower_program(parse_program(source))
    ensure_global_symbols(lowered)
    graph = build_call_graph(lowered)
    modref = compute_modref(lowered, graph) if use_mod else None
    effects = make_call_effects(lowered, proc, modref)
    return build_ssa(lowered.procedure(proc), effects), lowered


def main_src(body_lines, extra=""):
    return "program t\n" + "\n".join(body_lines) + "\nend\n" + extra


def defs_of(ssa, name):
    found = []
    for _, instr in ssa.cfg.instructions():
        dest = instr.dest
        if isinstance(dest, VarDef) and dest.symbol.name == name:
            found.append(dest)
    return found


class TestRenaming:
    def test_straightline_versions_increment(self):
        ssa, _ = ssa_of(main_src(["n = 1", "n = 2", "n = 3"]))
        versions = [d.version for d in defs_of(ssa, "n")]
        assert versions == [1, 2, 3]

    def test_uses_see_latest_version(self):
        ssa, _ = ssa_of(main_src(["n = 1", "m = n", "n = 2", "k = n"]))
        copies = [
            i
            for _, i in ssa.cfg.instructions()
            if isinstance(i, Copy) and isinstance(i.src, SSAName)
            and i.src.symbol.name == "n"
        ]
        assert [c.src.version for c in copies] == [1, 2]

    def test_entry_version_zero_for_unassigned_use(self):
        ssa, _ = ssa_of(main_src(["m = n"]))
        use = next(
            i.src
            for _, i in ssa.cfg.instructions()
            if isinstance(i, Copy) and isinstance(i.src, SSAName)
        )
        assert use.version == 0

    def test_spans_preserved_through_renaming(self):
        source = main_src(["m = n"])
        ssa, _ = ssa_of(source)
        use = next(
            i.src
            for _, i in ssa.cfg.instructions()
            if isinstance(i, Copy) and isinstance(i.src, SSAName)
        )
        assert use.span.extract(source) == "n"

    def test_original_cfg_untouched(self):
        lowered = lower_program(parse_program(main_src(["n = 1", "m = n"])))
        before = [
            type(i).__name__ for _, i in lowered.procedure("t").cfg.instructions()
        ]
        build_ssa(lowered.procedure("t"))
        after = [
            type(i).__name__ for _, i in lowered.procedure("t").cfg.instructions()
        ]
        assert before == after
        # and no SSA names leaked into the original
        for _, instr in lowered.procedure("t").cfg.instructions():
            for operand in instr.uses():
                assert not isinstance(operand, SSAName)


class TestPhiPlacement:
    def test_diamond_gets_phi(self):
        ssa, _ = ssa_of(
            main_src(
                ["if (c > 0) then", "n = 1", "else", "n = 2", "endif", "m = n"]
            )
        )
        phis = [i for _, i in ssa.cfg.instructions() if isinstance(i, Phi)]
        phi_names = {p.dest.symbol.name for p in phis}
        assert "n" in phi_names

    def test_phi_has_input_per_predecessor(self):
        ssa, _ = ssa_of(
            main_src(
                ["if (c > 0) then", "n = 1", "else", "n = 2", "endif", "m = n"]
            )
        )
        phi = next(
            i
            for _, i in ssa.cfg.instructions()
            if isinstance(i, Phi) and i.dest.symbol.name == "n"
        )
        block = next(b for b, i in ssa.cfg.instructions() if i is phi)
        assert set(phi.incoming) == set(block.preds)
        incoming_versions = {v.version for v in phi.incoming.values()}
        assert len(incoming_versions) == 2
        assert phi.dest.version not in incoming_versions

    def test_loop_phi_merges_entry_and_backedge(self):
        ssa, _ = ssa_of(
            main_src(["n = 0", "do while (n < 3)", "n = n + 1", "enddo", "m = n"])
        )
        phis = [
            i
            for _, i in ssa.cfg.instructions()
            if isinstance(i, Phi) and i.dest.symbol.name == "n"
        ]
        assert phis
        header_phi = phis[0]
        assert len(header_phi.incoming) == 2

    def test_no_phi_for_single_def_variable(self):
        ssa, _ = ssa_of(
            main_src(["n = 5", "if (c > 0) then", "m = n", "endif", "k = n"])
        )
        phi_names = {
            i.dest.symbol.name
            for _, i in ssa.cfg.instructions()
            if isinstance(i, Phi)
        }
        assert "n" not in phi_names


class TestExitVersions:
    def test_exit_version_after_single_path(self):
        ssa, _ = ssa_of(main_src(["n = 1", "n = 2"]))
        symbol = ssa.lowered.procedure.symtab.lookup("n")
        assert ssa.exit_versions[symbol] == 2
        assert ssa.exit_reachable

    def test_exit_version_merges_branches(self):
        ssa, _ = ssa_of(
            main_src(["if (c > 0) then", "n = 1", "else", "n = 2", "endif"])
        )
        symbol = ssa.lowered.procedure.symtab.lookup("n")
        version = ssa.exit_versions[symbol]
        # the exit-reaching version is the phi merge, not either branch's
        from repro.ir.instructions import Phi

        phi = next(
            i
            for _, i in ssa.cfg.instructions()
            if isinstance(i, Phi) and i.dest.symbol is symbol
        )
        assert version == phi.dest.version
        assert version not in {v.version for v in phi.incoming.values()}

    def test_stop_only_procedure_has_unreachable_exit(self):
        ssa, _ = ssa_of(main_src(["n = 1", "stop"]))
        assert not ssa.exit_reachable
        assert ssa.exit_versions == {}


class TestCallEffects:
    SUB = "subroutine s(a, b)\ninteger a, b\na = b + 1\nend\n"

    def test_modified_actual_killed(self):
        src = main_src(["integer n, m", "n = 1", "m = 2", "call s(n, m)",
                        "k = n", "j = m"], self.SUB)
        ssa, _ = ssa_of(src)
        kills = [i for _, i in ssa.cfg.instructions() if isinstance(i, CallKill)]
        killed_names = {k.target.symbol.name for k in kills}
        assert killed_names == {"n"}  # only formal 'a' is modified

    def test_kill_binding_names_formal(self):
        src = main_src(["integer n, m", "call s(n, m)"], self.SUB)
        ssa, _ = ssa_of(src)
        kill = next(i for _, i in ssa.cfg.instructions() if isinstance(i, CallKill))
        assert kill.binding == ("formal", "a")

    def test_no_mod_kills_everything_visible(self):
        src = main_src(["integer n, m", "call s(n, m)"], self.SUB)
        ssa, _ = ssa_of(src, use_mod=False)
        kills = [i for _, i in ssa.cfg.instructions() if isinstance(i, CallKill)]
        killed_names = {k.target.symbol.name for k in kills}
        assert killed_names == {"n", "m"}

    def test_use_after_call_sees_kill_version(self):
        src = main_src(["integer n, m", "n = 1", "call s(n, m)", "k = n"],
                       self.SUB)
        ssa, _ = ssa_of(src)
        uses_of_n = [
            op
            for _, i in ssa.cfg.instructions()
            if not isinstance(i, (Phi, Call))
            for op in i.uses()
            if isinstance(op, SSAName) and op.symbol.name == "n"
        ]
        # the final use must be the post-kill version (2), not 1
        assert uses_of_n[-1].version == 2

    def test_global_versions_snapshotted_at_calls(self):
        src = (
            "program t\ncommon /c/ g\ninteger g\ng = 7\ncall s(g, g)\nend\n"
            + self.SUB
        )
        ssa, _ = ssa_of(src)
        call = ssa.calls()[0]
        snapshot = ssa.call_versions[call.site_id]
        g_symbol = next(s for s in snapshot if s.name == "g")
        assert snapshot[g_symbol] == 1  # version after 'g = 7'


class TestHiddenGlobals:
    def test_hidden_symbol_created_for_undeclared_global(self):
        src = """
program t
  common /c/ g
  integer g
  g = 1
  call middle
end
subroutine middle
  call bottom
end
subroutine bottom
  common /c/ h
  integer h
  h = 2
end
"""
        lowered = lower_program(parse_program(src))
        ensure_global_symbols(lowered)
        middle = lowered.procedure("middle").procedure
        hidden = [s for s in middle.symtab if s.hidden and s.kind.value == "global"]
        assert len(hidden) == 1
        assert hidden[0].global_id.block == "c"

    def test_ensure_global_symbols_idempotent(self):
        src = "program t\ncommon /c/ g\ninteger g\ng = 1\nend\n"
        lowered = lower_program(parse_program(src))
        ensure_global_symbols(lowered)
        count1 = len(lowered.procedure("t").procedure.symtab)
        ensure_global_symbols(lowered)
        assert len(lowered.procedure("t").procedure.symtab) == count1


class TestEntryUseSpans:
    def test_entry_uses_found(self):
        source = main_src(["m = n + n"])
        ssa, _ = ssa_of(source)
        symbol = ssa.lowered.procedure.symtab.lookup("n")
        spans = ssa.entry_use_spans(symbol)
        assert len(spans) == 2
        assert all(s.extract(source) == "n" for s in spans)

    def test_redefined_uses_excluded(self):
        source = main_src(["m = n", "n = 5", "k = n"])
        ssa, _ = ssa_of(source)
        symbol = ssa.lowered.procedure.symtab.lookup("n")
        assert len(ssa.entry_use_spans(symbol)) == 1
