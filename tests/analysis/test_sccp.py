"""Unit tests for sparse conditional constant propagation."""

from repro.analysis.sccp import run_sccp
from repro.analysis.ssa import build_ssa, ensure_global_symbols
from repro.callgraph import build_call_graph, compute_modref, make_call_effects
from repro.core.lattice import BOTTOM, is_constant
from repro.frontend import parse_program
from repro.ir import lower_program
from repro.ir.instructions import SSAName


def sccp_of(source, proc="t", entry=None, use_mod=True):
    lowered = lower_program(parse_program(source))
    ensure_global_symbols(lowered)
    graph = build_call_graph(lowered)
    modref = compute_modref(lowered, graph) if use_mod else None
    effects = make_call_effects(lowered, proc, modref)
    ssa = build_ssa(lowered.procedure(proc), effects)
    env = {}
    if entry:
        symtab = lowered.procedure(proc).procedure.symtab
        for name, value in entry.items():
            env[symtab.lookup(name)] = value
    return run_sccp(ssa, env), ssa, lowered


def final_value(result, ssa, name):
    symbol = ssa.lowered.procedure.symtab.lookup(name)
    version = ssa.exit_versions[symbol]
    return result.values.get(SSAName(symbol, version), BOTTOM)


def main_src(body_lines, extra=""):
    return "program t\n" + "\n".join(body_lines) + "\nend\n" + extra


class TestStraightLine:
    def test_constant_chain(self):
        result, ssa, _ = sccp_of(main_src(["n = 2", "m = n * 3", "k = m + 1"]))
        assert final_value(result, ssa, "k") == 7

    def test_unknown_from_read(self):
        result, ssa, _ = sccp_of(main_src(["read n", "m = n + 1"]))
        assert final_value(result, ssa, "m") is BOTTOM

    def test_fortran_integer_division(self):
        result, ssa, _ = sccp_of(main_src(["n = -7", "m = n / 2"]))
        assert final_value(result, ssa, "m") == -3

    def test_division_by_zero_is_bottom(self):
        result, ssa, _ = sccp_of(main_src(["n = 0", "m = 5 / n"]))
        assert final_value(result, ssa, "m") is BOTTOM

    def test_real_result_is_bottom(self):
        result, ssa, _ = sccp_of(main_src(["x = 1.5", "y = x + 1.0"]))
        assert final_value(result, ssa, "y") is BOTTOM

    def test_logical_constants(self):
        result, ssa, _ = sccp_of(
            main_src(["logical flag", "n = 3", "flag = n > 2"])
        )
        assert final_value(result, ssa, "flag") is True


class TestBranchPruning:
    def test_constant_true_branch_prunes_else(self):
        result, ssa, _ = sccp_of(
            main_src(
                ["n = 1", "if (n > 0) then", "m = 10", "else", "m = 20",
                 "endif", "k = m"]
            )
        )
        # only the then-branch executes, so m is 10 at the join
        assert final_value(result, ssa, "k") == 10

    def test_unknown_branch_merges_to_bottom(self):
        result, ssa, _ = sccp_of(
            main_src(
                ["read n", "if (n > 0) then", "m = 10", "else", "m = 20",
                 "endif", "k = m"]
            )
        )
        assert final_value(result, ssa, "k") is BOTTOM

    def test_unknown_branch_same_value_still_constant(self):
        result, ssa, _ = sccp_of(
            main_src(
                ["read n", "if (n > 0) then", "m = 10", "else", "m = 10",
                 "endif", "k = m"]
            )
        )
        assert final_value(result, ssa, "k") == 10

    def test_unreachable_block_not_executable(self):
        result, ssa, _ = sccp_of(
            main_src(["n = 1", "if (n > 2) then", "m = 99", "endif"])
        )
        executable = result.executable_blocks
        all_blocks = set(ssa.cfg.blocks)
        assert executable < all_blocks  # something was pruned

    def test_optimism_beats_pessimistic_vn_on_loops(self):
        # x stays 5 through the loop; SCCP's optimism proves it.
        result, ssa, _ = sccp_of(
            main_src(
                ["m = 5", "do i = 1, 10", "m = 5", "enddo", "k = m"]
            )
        )
        assert final_value(result, ssa, "k") == 5

    def test_loop_variant_value_is_bottom(self):
        result, ssa, _ = sccp_of(
            main_src(["m = 0", "do i = 1, 10", "m = m + 1", "enddo", "k = m"])
        )
        assert final_value(result, ssa, "k") is BOTTOM

    def test_constant_trip_count_loop_exit_value(self):
        # do i = 1, 0 never executes its body.
        result, ssa, _ = sccp_of(
            main_src(["m = 1", "do i = 1, 0", "m = 2", "enddo", "k = m"])
        )
        assert final_value(result, ssa, "k") == 1


class TestEntryEnvironment:
    SUB = "program t\nx = 1\nend\n"

    def test_seeded_formal_propagates(self):
        src = self.SUB + "subroutine s(a)\ninteger a, b\nb = a * 2\nend\n"
        result, ssa, _ = sccp_of(src, "s", entry={"a": 21})
        assert final_value(result, ssa, "b") == 42

    def test_unseeded_formal_is_bottom(self):
        src = self.SUB + "subroutine s(a)\ninteger a, b\nb = a * 2\nend\n"
        result, ssa, _ = sccp_of(src, "s")
        assert final_value(result, ssa, "b") is BOTTOM

    def test_seeding_prunes_branches(self):
        src = self.SUB + (
            "subroutine s(a)\ninteger a, b\n"
            "if (a == 0) then\nb = 1\nelse\nb = 2\nendif\nend\n"
        )
        result, ssa, _ = sccp_of(src, "s", entry={"a": 0})
        assert final_value(result, ssa, "b") == 1


class TestCalls:
    def test_call_kills_modified_argument(self):
        src = main_src(
            ["n = 1", "call bump(n)", "k = n"],
            "subroutine bump(x)\ninteger x\nx = x + 1\nend\n",
        )
        result, ssa, _ = sccp_of(src)
        assert final_value(result, ssa, "k") is BOTTOM

    def test_mod_preserves_untouched_argument(self):
        src = main_src(
            ["n = 1", "call peek(n)", "k = n"],
            "subroutine peek(x)\ninteger x\ny = x\nend\n",
        )
        result, ssa, _ = sccp_of(src)
        assert final_value(result, ssa, "k") == 1

    def test_without_mod_call_kills_everything(self):
        src = main_src(
            ["n = 1", "call peek(n)", "k = n"],
            "subroutine peek(x)\ninteger x\ny = x\nend\n",
        )
        result, ssa, _ = sccp_of(src, use_mod=False)
        assert final_value(result, ssa, "k") is BOTTOM

    def test_function_result_unknown(self):
        src = main_src(
            ["n = f(1)", "k = n"],
            "integer function f(x)\ninteger x\nf = 7\nend\n",
        )
        result, ssa, _ = sccp_of(src)
        assert final_value(result, ssa, "k") is BOTTOM


class TestResultApi:
    def test_constant_names_filter(self):
        result, ssa, _ = sccp_of(main_src(["n = 2", "read m"]))
        constants = result.constant_names()
        assert all(is_constant(v) for v in constants.values())
        named = {str(k) for k in constants}
        assert any(k.startswith("n.") for k in named)
