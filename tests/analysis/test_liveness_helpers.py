"""Tests for liveness helpers and SSA bookkeeping accessors."""

import pytest

from repro.analysis.liveness import compute_liveness, exit_live_set
from repro.analysis.ssa import build_ssa
from repro.frontend import parse_program
from repro.frontend.symbols import SymbolKind
from repro.ir import lower_program
from repro.ir.instructions import Copy, SSAName, Temp


def lowered_main(body_lines, extra=""):
    source = "program t\n" + "\n".join(body_lines) + "\nend\n" + extra
    return lower_program(parse_program(source))


class TestLiveAfter:
    def test_live_after_each_point(self):
        lowered = lowered_main(["n = 1", "m = n + 1", "write m"])
        proc = lowered.procedure("t")
        cfg = proc.cfg
        liveness = compute_liveness(cfg)
        entry = cfg.entry
        symtab = proc.procedure.symtab
        n, m = symtab.lookup("n"), symtab.lookup("m")
        # after 'n = 1' (index 0): n is live (the add reads it)
        assert n in liveness.live_after(cfg, entry.id, 0)
        # after the final write, nothing of n/m is live
        last = len(entry.instrs) - 1
        live_at_end = liveness.live_after(cfg, entry.id, last)
        assert n not in live_at_end
        assert m not in live_at_end

    def test_live_after_respects_kills(self):
        lowered = lowered_main(["n = 1", "n = 2", "write n"])
        proc = lowered.procedure("t")
        cfg = proc.cfg
        liveness = compute_liveness(cfg)
        n = proc.procedure.symtab.lookup("n")
        # right after the first assignment n is dead (killed by the second)
        assert n not in liveness.live_after(cfg, cfg.entry.id, 0)


class TestExitLiveSet:
    def test_members(self):
        source = (
            "program m\nx = 1\nend\n"
            "integer function f(a)\ninteger a, t\ncommon /c/ g\ninteger g\n"
            "t = a\nf = t\ng = t\nend\n"
        )
        lowered = lowered_main(["x = 1"])  # unused; rebuild properly
        lowered = lower_program(parse_program(source))
        symbols = list(lowered.procedure("f").procedure.symtab)
        live = exit_live_set(symbols)
        kinds = {s.kind for s in live}
        assert kinds == {SymbolKind.FORMAL, SymbolKind.GLOBAL, SymbolKind.RESULT}
        names = {s.name for s in live}
        assert names == {"a", "g", "f"}


class TestSSAAccessors:
    def build(self, body, extra=""):
        lowered = lowered_main(body, extra)
        return build_ssa(lowered.procedure("t"))

    def test_definitions_map(self):
        ssa = self.build(["n = 1", "m = n * 2"])
        defs = ssa.definitions()
        symtab = ssa.lowered.procedure.symtab
        n = symtab.lookup("n")
        key = SSAName(n, 1)
        assert key in defs
        block_id, instr = defs[key]
        assert isinstance(instr, Copy)

    def test_uses_map(self):
        ssa = self.build(["n = 1", "m = n + n", "k = n"])
        uses = ssa.uses()
        symtab = ssa.lowered.procedure.symtab
        n = symtab.lookup("n")
        entries = uses.get(SSAName(n, 1), [])
        # n.1 is read twice in the add and once in the copy to k
        assert len(entries) == 3

    def test_temps_in_definitions(self):
        ssa = self.build(["m = 1 + 2"])
        defs = ssa.definitions()
        assert any(isinstance(key, Temp) for key in defs)

    def test_entry_name_helper(self):
        ssa = self.build(["m = n"])
        symtab = ssa.lowered.procedure.symtab
        n = symtab.lookup("n")
        assert ssa.entry_name(n) == SSAName(n, 0)
