"""Unit tests for symbolic value numbering."""

from repro.analysis.ssa import build_ssa, ensure_global_symbols
from repro.analysis.valuenum import RESULT_KEY, entry_key_of, value_number
from repro.callgraph import build_call_graph, compute_modref, make_call_effects
from repro.core.exprs import BOTTOM_EXPR, ConstExpr, EntryExpr, OpExpr
from repro.frontend import parse_program
from repro.frontend.symbols import GlobalId
from repro.ir import lower_program


def numbering_of(source, proc, rjf_table=None, use_mod=True, compose=False):
    lowered = lower_program(parse_program(source))
    ensure_global_symbols(lowered)
    graph = build_call_graph(lowered)
    modref = compute_modref(lowered, graph) if use_mod else None
    effects = make_call_effects(lowered, proc, modref)
    ssa = build_ssa(lowered.procedure(proc), effects)
    return value_number(ssa, lowered, rjf_table, compose), lowered


def exit_expr_of(source, proc, var, **kwargs):
    numbering, lowered = numbering_of(source, proc, **kwargs)
    symbol = lowered.procedure(proc).procedure.symtab.lookup(var)
    return numbering.exit_expr(symbol)


SUB_WRAP = "program t\nx = 1\nend\n"


class TestEntryExpressions:
    def test_formal_entry_is_entry_expr(self):
        src = SUB_WRAP + "subroutine s(a)\ninteger a, b\nb = a\nend\n"
        expr = exit_expr_of(src, "s", "b")
        assert expr == EntryExpr("a")

    def test_global_entry_keyed_by_gid(self):
        src = SUB_WRAP + (
            "subroutine s\ncommon /c/ g\ninteger g, b\nb = g\nend\n"
        )
        expr = exit_expr_of(src, "s", "b")
        assert expr == EntryExpr(GlobalId("c", 0))

    def test_local_entry_is_bottom(self):
        src = SUB_WRAP + "subroutine s\ninteger u, b\nb = u\nend\n"
        assert exit_expr_of(src, "s", "b").is_bottom

    def test_real_formal_is_bottom(self):
        src = SUB_WRAP + "subroutine s(x)\nreal x\nreal y\ny = x\nend\n"
        assert exit_expr_of(src, "s", "y").is_bottom


class TestExpressionBuilding:
    def test_constant_folding(self):
        src = SUB_WRAP + "subroutine s(a)\ninteger a, b\nb = 2 * 3 + 4\nend\n"
        assert exit_expr_of(src, "s", "b") == ConstExpr(10)

    def test_polynomial_over_formal(self):
        src = SUB_WRAP + "subroutine s(a)\ninteger a, b\nb = 2 * a + 1\nend\n"
        expr = exit_expr_of(src, "s", "b")
        assert isinstance(expr, OpExpr)
        assert expr.support() == {"a"}

    def test_copy_chain_collapses(self):
        src = SUB_WRAP + (
            "subroutine s(a)\ninteger a, b, c, d\nb = a\nc = b\nd = c\nend\n"
        )
        assert exit_expr_of(src, "s", "d") == EntryExpr("a")

    def test_array_load_is_bottom(self):
        src = SUB_WRAP + (
            "subroutine s(a)\ninteger a, b\ninteger v(5)\nb = v(1)\nend\n"
        )
        assert exit_expr_of(src, "s", "b").is_bottom

    def test_read_is_bottom(self):
        src = SUB_WRAP + "subroutine s(a)\ninteger a, b\nread b\nend\n"
        assert exit_expr_of(src, "s", "b").is_bottom

    def test_intrinsic_folds(self):
        src = SUB_WRAP + "subroutine s(a)\ninteger a, b\nb = mod(7, 3) + max(1, 5)\nend\n"
        assert exit_expr_of(src, "s", "b") == ConstExpr(6)

    def test_real_conversion_is_bottom(self):
        src = SUB_WRAP + "subroutine s(a)\ninteger a, b\nb = 2.5\nend\n"
        assert exit_expr_of(src, "s", "b").is_bottom

    def test_diamond_same_value_merges(self):
        src = SUB_WRAP + (
            "subroutine s(a)\ninteger a, b\n"
            "if (a > 0) then\nb = 5\nelse\nb = 5\nendif\nend\n"
        )
        assert exit_expr_of(src, "s", "b") == ConstExpr(5)

    def test_diamond_different_values_bottom(self):
        src = SUB_WRAP + (
            "subroutine s(a)\ninteger a, b\n"
            "if (a > 0) then\nb = 5\nelse\nb = 6\nendif\nend\n"
        )
        assert exit_expr_of(src, "s", "b").is_bottom

    def test_loop_carried_value_bottom(self):
        src = SUB_WRAP + (
            "subroutine s(a)\ninteger a, b, i\nb = 0\n"
            "do i = 1, a\nb = b + 1\nenddo\nend\n"
        )
        assert exit_expr_of(src, "s", "b").is_bottom

    def test_value_restored_after_branch(self):
        # b = a both with and without the branch taken -> still entry(a)
        src = SUB_WRAP + (
            "subroutine s(a)\ninteger a, b\nb = a\n"
            "if (a > 0) then\nb = a\nendif\nend\n"
        )
        assert exit_expr_of(src, "s", "b") == EntryExpr("a")


class TestCallHandling:
    MODSUB = "subroutine m(x)\ninteger x\nx = 5\nend\n"
    NOMODSUB = "subroutine r(x)\ninteger x\ny = x\nend\n"

    def test_unmodified_var_survives_call(self):
        src = SUB_WRAP + self.NOMODSUB + (
            "subroutine s(a)\ninteger a, b\nb = a\ncall r(b)\nend\n"
        )
        assert exit_expr_of(src, "s", "b") == EntryExpr("a")

    def test_modified_var_killed_without_rjf(self):
        src = SUB_WRAP + self.MODSUB + (
            "subroutine s(a)\ninteger a, b\nb = a\ncall m(b)\nend\n"
        )
        assert exit_expr_of(src, "s", "b").is_bottom

    def test_constant_rjf_applied(self):
        src = SUB_WRAP + self.MODSUB + (
            "subroutine s(a)\ninteger a, b\nb = a\ncall m(b)\nend\n"
        )
        rjf = {"m": {"x": ConstExpr(5)}}
        assert exit_expr_of(src, "s", "b", rjf_table=rjf) == ConstExpr(5)

    def test_rjf_with_nonconstant_support_is_bottom(self):
        # R(x) = entry(x) + 1 but the actual is a formal -> §3.2 limitation
        src = SUB_WRAP + (
            "subroutine inc(x)\ninteger x\nx = x + 1\nend\n"
            "subroutine s(a)\ninteger a\ncall inc(a)\nend\n"
        )
        from repro.core.exprs import make_binary

        rjf = {"inc": {"x": make_binary("+", EntryExpr("x"), ConstExpr(1))}}
        assert exit_expr_of(src, "s", "a", rjf_table=rjf).is_bottom

    def test_rjf_with_constant_argument_evaluates(self):
        src = SUB_WRAP + (
            "subroutine inc(x)\ninteger x\nx = x + 1\nend\n"
            "subroutine s(a)\ninteger a, b\nb = 41\ncall inc(b)\nend\n"
        )
        from repro.core.exprs import make_binary

        rjf = {"inc": {"x": make_binary("+", EntryExpr("x"), ConstExpr(1))}}
        assert exit_expr_of(src, "s", "b", rjf_table=rjf) == ConstExpr(42)

    def test_composed_rjf_keeps_symbolic_form(self):
        src = SUB_WRAP + (
            "subroutine inc(x)\ninteger x\nx = x + 1\nend\n"
            "subroutine s(a)\ninteger a\ncall inc(a)\nend\n"
        )
        from repro.core.exprs import make_binary

        rjf = {"inc": {"x": make_binary("+", EntryExpr("x"), ConstExpr(1))}}
        expr = exit_expr_of(src, "s", "a", rjf_table=rjf, compose=True)
        assert expr.support() == {"a"}
        assert not expr.is_bottom

    def test_function_result_bottom_without_rjf(self):
        src = (
            "program t\nn = f(1)\nend\n"
            "integer function f(x)\ninteger x\nf = 7\nend\n"
        )
        numbering, lowered = numbering_of(src, "t")
        symbol = lowered.procedure("t").procedure.symtab.lookup("n")
        assert numbering.exit_expr(symbol).is_bottom

    def test_function_result_with_rjf(self):
        src = (
            "program t\nn = f(1)\nend\n"
            "integer function f(x)\ninteger x\nf = 7\nend\n"
        )
        rjf = {"f": {RESULT_KEY: ConstExpr(7)}}
        numbering, lowered = numbering_of(src, "t", rjf_table=rjf)
        symbol = lowered.procedure("t").procedure.symtab.lookup("n")
        assert numbering.exit_expr(symbol) == ConstExpr(7)

    def test_no_mod_mode_kills_across_any_call(self):
        src = SUB_WRAP + self.NOMODSUB + (
            "subroutine s(a)\ninteger a, b, c\nb = a\nc = 3\ncall r(b)\nend\n"
        )
        # without MOD, 'c' is not a by-ref actual here... only b is killed;
        # globals and actuals die, c survives as a pure local.
        numbering, lowered = numbering_of(src, "s", use_mod=False)
        symtab = lowered.procedure("s").procedure.symtab
        assert numbering.exit_expr(symtab.lookup("b")).is_bottom
        assert numbering.exit_expr(symtab.lookup("c")) == ConstExpr(3)


class TestArgumentExprs:
    def test_argument_expressions(self):
        src = (
            "program t\ninteger n\nn = 4\ncall s(n, n + 1, 9)\nend\n"
            "subroutine s(a, b, c)\ninteger a, b, c\na = b + c\nend\n"
        )
        numbering, lowered = numbering_of(src, "t")
        call = numbering.ssa.calls()[0]
        exprs = [numbering.argument_expr(a) for a in call.args]
        assert exprs == [ConstExpr(4), ConstExpr(5), ConstExpr(9)]

    def test_array_argument_is_bottom(self):
        src = (
            "program t\ninteger v(3)\ncall s(v)\nend\n"
            "subroutine s(w)\ninteger w(3)\nw(1) = 0\nend\n"
        )
        numbering, _ = numbering_of(src, "t")
        call = numbering.ssa.calls()[0]
        assert numbering.argument_expr(call.args[0]).is_bottom


class TestEntryKeys:
    def test_entry_key_of_formal(self):
        src = SUB_WRAP + "subroutine s(a)\ninteger a\na = 1\nend\n"
        _, lowered = numbering_of(src, "s")
        symbol = lowered.procedure("s").procedure.symtab.lookup("a")
        assert entry_key_of(symbol) == "a"

    def test_entry_key_of_global(self):
        src = "program t\ncommon /c/ g\ninteger g\ng = 1\nend\n"
        _, lowered = numbering_of(src, "t")
        symbol = lowered.procedure("t").procedure.symtab.lookup("g")
        assert entry_key_of(symbol) == GlobalId("c", 0)

    def test_entry_key_of_local_is_none(self):
        src = "program t\ninteger n\nn = 1\nend\n"
        _, lowered = numbering_of(src, "t")
        symbol = lowered.procedure("t").procedure.symtab.lookup("n")
        assert entry_key_of(symbol) is None
