"""Unit tests for dominators and dominance frontiers."""

from repro.analysis.dominance import compute_dominators, iterated_frontier
from repro.ir.cfg import ControlFlowGraph
from repro.ir.instructions import CJump, Jump, Return, bool_const


def linear_cfg(n):
    """B0 -> B1 -> ... -> B(n-1) -> return."""
    cfg = ControlFlowGraph()
    blocks = [cfg.new_block() for _ in range(n)]
    cfg.entry_id = blocks[0].id
    cfg.exit_id = blocks[-1].id
    for a, b in zip(blocks, blocks[1:]):
        a.append(Jump(b.id))
    blocks[-1].append(Return())
    cfg.refresh()
    return cfg, blocks


def diamond_cfg():
    cfg = ControlFlowGraph()
    entry, left, right, join = (cfg.new_block() for _ in range(4))
    cfg.entry_id = entry.id
    cfg.exit_id = join.id
    entry.append(CJump(cond=bool_const(True), if_true=left.id, if_false=right.id))
    left.append(Jump(join.id))
    right.append(Jump(join.id))
    join.append(Return())
    cfg.refresh()
    return cfg, entry, left, right, join


def loop_cfg():
    """entry -> header <-> body; header -> exit."""
    cfg = ControlFlowGraph()
    entry, header, body, exit_b = (cfg.new_block() for _ in range(4))
    cfg.entry_id = entry.id
    cfg.exit_id = exit_b.id
    entry.append(Jump(header.id))
    header.append(CJump(cond=bool_const(True), if_true=body.id, if_false=exit_b.id))
    body.append(Jump(header.id))
    exit_b.append(Return())
    cfg.refresh()
    return cfg, entry, header, body, exit_b


class TestImmediateDominators:
    def test_linear_chain(self):
        cfg, blocks = linear_cfg(4)
        tree = compute_dominators(cfg)
        for prev, block in zip(blocks, blocks[1:]):
            assert tree.idom[block.id] == prev.id

    def test_entry_self_dominates(self):
        cfg, blocks = linear_cfg(2)
        tree = compute_dominators(cfg)
        assert tree.idom[cfg.entry_id] == cfg.entry_id

    def test_diamond_join_dominated_by_entry(self):
        cfg, entry, left, right, join = diamond_cfg()
        tree = compute_dominators(cfg)
        assert tree.idom[join.id] == entry.id
        assert tree.idom[left.id] == entry.id
        assert tree.idom[right.id] == entry.id

    def test_loop_header_dominates_body(self):
        cfg, entry, header, body, exit_b = loop_cfg()
        tree = compute_dominators(cfg)
        assert tree.idom[body.id] == header.id
        assert tree.idom[exit_b.id] == header.id

    def test_dominates_relation(self):
        cfg, entry, left, right, join = diamond_cfg()
        tree = compute_dominators(cfg)
        assert tree.dominates(entry.id, join.id)
        assert tree.dominates(join.id, join.id)
        assert not tree.dominates(left.id, join.id)
        assert tree.strictly_dominates(entry.id, left.id)
        assert not tree.strictly_dominates(left.id, left.id)

    def test_children_partition(self):
        cfg, entry, left, right, join = diamond_cfg()
        tree = compute_dominators(cfg)
        assert sorted(tree.children[entry.id]) == sorted(
            [left.id, right.id, join.id]
        )

    def test_preorder_parents_first(self):
        cfg, entry, header, body, exit_b = loop_cfg()
        tree = compute_dominators(cfg)
        order = tree.preorder()
        assert order.index(entry.id) < order.index(header.id)
        assert order.index(header.id) < order.index(body.id)


class TestDominanceFrontiers:
    def test_diamond_frontier(self):
        cfg, entry, left, right, join = diamond_cfg()
        tree = compute_dominators(cfg)
        assert tree.frontier[left.id] == {join.id}
        assert tree.frontier[right.id] == {join.id}
        assert tree.frontier[entry.id] == set()

    def test_loop_frontier_contains_header(self):
        cfg, entry, header, body, exit_b = loop_cfg()
        tree = compute_dominators(cfg)
        assert header.id in tree.frontier[body.id]
        # the header is in its own frontier (it is a loop header)
        assert header.id in tree.frontier[header.id]

    def test_iterated_frontier_diamond(self):
        cfg, entry, left, right, join = diamond_cfg()
        tree = compute_dominators(cfg)
        assert iterated_frontier(tree, {left.id}) == {join.id}
        assert iterated_frontier(tree, {entry.id}) == set()

    def test_iterated_frontier_transitive(self):
        # Two nested diamonds: a def in the inner arm needs phis at both joins.
        cfg = ControlFlowGraph()
        b = [cfg.new_block() for _ in range(7)]
        cfg.entry_id = b[0].id
        cfg.exit_id = b[6].id
        b[0].append(CJump(cond=bool_const(True), if_true=b[1].id, if_false=b[5].id))
        b[1].append(CJump(cond=bool_const(True), if_true=b[2].id, if_false=b[3].id))
        b[2].append(Jump(b[4].id))
        b[3].append(Jump(b[4].id))
        b[4].append(Jump(b[6].id))
        b[5].append(Jump(b[6].id))
        b[6].append(Return())
        cfg.refresh()
        tree = compute_dominators(cfg)
        assert iterated_frontier(tree, {b[2].id}) == {b[4].id, b[6].id}
