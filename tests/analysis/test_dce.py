"""Unit tests for liveness and dead-code elimination."""

from repro.analysis.dce import eliminate_dead_code, eliminate_dead_stores, fold_constant_branches
from repro.analysis.liveness import compute_liveness, exit_live_set
from repro.analysis.ssa import build_ssa, ensure_global_symbols
from repro.analysis.valuenum import value_number
from repro.callgraph import build_call_graph, compute_modref, make_call_effects
from repro.frontend import parse_program
from repro.ir import lower_program
from repro.ir.instructions import Call, CJump, Copy, Jump, WriteOut


def lowered_of(source):
    lowered = lower_program(parse_program(source))
    ensure_global_symbols(lowered)
    return lowered


def vn_of(lowered, proc):
    graph = build_call_graph(lowered)
    modref = compute_modref(lowered, graph)
    effects = make_call_effects(lowered, proc, modref)
    ssa = build_ssa(lowered.procedure(proc), effects)
    return value_number(ssa, lowered)


def main_src(body_lines, extra=""):
    return "program t\n" + "\n".join(body_lines) + "\nend\n" + extra


class TestLiveness:
    def test_used_variable_live_at_entry(self):
        lowered = lowered_of(main_src(["m = n + 1", "write m"]))
        cfg = lowered.procedure("t").cfg
        liveness = compute_liveness(cfg)
        symtab = lowered.procedure("t").procedure.symtab
        assert symtab.lookup("n") in liveness.live_in[cfg.entry_id]

    def test_dead_assignment_not_live(self):
        lowered = lowered_of(main_src(["m = 1", "m = 2", "write m"]))
        cfg = lowered.procedure("t").cfg
        liveness = compute_liveness(cfg)
        # nothing is live-in at entry: m is fully defined locally
        symtab = lowered.procedure("t").procedure.symtab
        assert symtab.lookup("m") not in liveness.live_in[cfg.entry_id]

    def test_loop_carried_liveness(self):
        lowered = lowered_of(
            main_src(["m = 0", "do while (m < 5)", "m = m + 1", "enddo"])
        )
        cfg = lowered.procedure("t").cfg
        liveness = compute_liveness(cfg)
        symtab = lowered.procedure("t").procedure.symtab
        m = symtab.lookup("m")
        # m is live around the loop
        assert any(m in liveness.live_out[bid] for bid in cfg.blocks)

    def test_boundary_set_respected(self):
        source = main_src(["x = 1"], "subroutine s(a)\ninteger a\na = 1\nend\n")
        lowered = lowered_of(source)
        proc = lowered.procedure("s")
        boundary = exit_live_set(list(proc.procedure.symtab))
        liveness = compute_liveness(proc.cfg, boundary)
        a = proc.procedure.symtab.lookup("a")
        assert a in liveness.live_out[proc.cfg.entry_id] or a in boundary


class TestDeadStoreElimination:
    def test_overwritten_store_removed(self):
        lowered = lowered_of(main_src(["m = 1", "m = 2", "write m"]))
        proc = lowered.procedure("t")
        removed = eliminate_dead_stores(proc)
        assert removed >= 1
        copies = [i for _, i in proc.cfg.instructions() if isinstance(i, Copy)]
        # only 'm = 2' (and its temp chain, if any) survives
        assert len([c for c in copies if c.dest.symbol.name == "m"]) == 1

    def test_entirely_dead_local_removed(self):
        lowered = lowered_of(main_src(["m = 1 + 2", "write 0"]))
        proc = lowered.procedure("t")
        removed = eliminate_dead_stores(proc)
        assert removed >= 1

    def test_global_store_survives(self):
        lowered = lowered_of(
            "program t\ncommon /c/ g\ninteger g\ng = 1\nend\n"
        )
        proc = lowered.procedure("t")
        eliminate_dead_stores(proc)
        copies = [i for _, i in proc.cfg.instructions() if isinstance(i, Copy)]
        assert any(c.dest.symbol.name == "g" for c in copies)

    def test_formal_store_survives(self):
        source = main_src(["x=1"], "subroutine s(a)\ninteger a\na = 5\nend\n")
        lowered = lowered_of(source)
        proc = lowered.procedure("s")
        eliminate_dead_stores(proc)
        copies = [i for _, i in proc.cfg.instructions() if isinstance(i, Copy)]
        assert any(c.dest.symbol.name == "a" for c in copies)

    def test_call_never_removed(self):
        source = main_src(
            ["n = f(1)"],
            "integer function f(x)\ninteger x\nf = x\nend\n",
        )
        lowered = lowered_of(source)
        proc = lowered.procedure("t")
        eliminate_dead_stores(proc)
        assert any(isinstance(i, Call) for _, i in proc.cfg.instructions())

    def test_write_operands_stay_live(self):
        lowered = lowered_of(main_src(["m = 42", "write m"]))
        proc = lowered.procedure("t")
        removed = eliminate_dead_stores(proc)
        assert removed == 0


class TestBranchFolding:
    def test_constant_condition_folds(self):
        lowered = lowered_of(
            main_src(["n = 1", "if (n > 0) then", "m = 1", "endif", "write 0"])
        )
        vn = vn_of(lowered, "t")
        proc = lowered.procedure("t")
        folded = fold_constant_branches(proc, vn.expr_of, {})
        assert folded == 1
        assert not any(isinstance(i, CJump) for _, i in proc.cfg.instructions())

    def test_unknown_condition_kept(self):
        lowered = lowered_of(
            main_src(["read n", "if (n > 0) then", "m = 1", "endif"])
        )
        vn = vn_of(lowered, "t")
        proc = lowered.procedure("t")
        assert fold_constant_branches(proc, vn.expr_of, {}) == 0

    def test_entry_env_enables_fold(self):
        source = main_src(
            ["x=1"],
            "subroutine s(a)\ninteger a\nif (a == 0) then\nb = 1\nendif\nend\n",
        )
        lowered = lowered_of(source)
        vn = vn_of(lowered, "s")
        proc = lowered.procedure("s")
        assert fold_constant_branches(proc, vn.expr_of, {"a": 0}) == 1

    def test_fold_then_unreachable_removal(self):
        lowered = lowered_of(
            main_src(
                ["n = 0", "if (n /= 0) then", "write 111", "endif", "write 0"]
            )
        )
        vn = vn_of(lowered, "t")
        proc = lowered.procedure("t")
        stats = eliminate_dead_code(proc, vn.expr_of, {})
        assert stats.folded_branches == 1
        assert stats.removed_blocks >= 1
        writes = [
            i for _, i in proc.cfg.instructions() if isinstance(i, WriteOut)
        ]
        assert len(writes) == 1  # the 'write 111' arm is gone

    def test_dce_is_idempotent(self):
        lowered = lowered_of(
            main_src(["n = 0", "if (n /= 0) then", "write 1", "endif"])
        )
        vn = vn_of(lowered, "t")
        proc = lowered.procedure("t")
        eliminate_dead_code(proc, vn.expr_of, {})
        # the second run must find nothing to do (fresh VN over mutated CFG)
        vn2 = vn_of(lowered, "t")
        stats = eliminate_dead_code(proc, vn2.expr_of, {})
        assert not stats.any_change
