"""Unit tests for local copy propagation."""

import pytest

from repro.analysis.copyprop import propagate_copies
from repro.frontend import parse_program
from repro.interp import run_program
from repro.ir import lower_program
from repro.ir.instructions import Const, Copy, VarUse, WriteOut
from repro.ir.validate import validate_program


def lowered_main(body_lines, extra=""):
    source = "program t\n" + "\n".join(body_lines) + "\nend\n" + extra
    lowered = lower_program(parse_program(source))
    return lowered, source


def writes_of(proc):
    return [i for _, i in proc.cfg.instructions() if isinstance(i, WriteOut)]


class TestPropagation:
    def test_const_through_temp(self):
        # 'm = 1 + 2' makes a temp; 'n = m' then 'write n': after DCE +
        # copyprop the write reads the propagated chain
        lowered, _ = lowered_main(["n = 5", "write n + 0"])
        proc = lowered.procedure("t")
        rewritten = propagate_copies(proc)
        assert rewritten >= 0  # nothing to forward here but must not crash

    def test_temp_chain_collapses(self):
        lowered, _ = lowered_main(["m = 7", "write m"])
        proc = lowered.procedure("t")
        propagate_copies(proc)
        validate_program(lowered)

    def test_forwarded_var_killed_by_redefinition(self):
        # t = n; n = 9; write t  -- the write must keep the OLD value
        # (IR-wise: the temp of 'n + 0' is computed before the kill)
        lowered, source = lowered_main(["n = 1", "k = n", "n = 9", "write k"])
        proc = lowered.procedure("t")
        propagate_copies(proc)
        validate_program(lowered)
        trace = run_program(lowered)
        assert trace.outputs == [1]

    def test_kill_across_calls(self):
        source_extra = "subroutine bump(x)\ninteger x\nx = x + 1\nend\n"
        lowered, _ = lowered_main(
            ["n = 1", "call bump(n)", "write n"], source_extra
        )
        proc = lowered.procedure("t")
        propagate_copies(proc)
        trace = run_program(lowered)
        assert trace.outputs == [2]

    def test_semantics_preserved_on_workload(self):
        from repro.workloads import load

        workload = load("trfd", scale=0.5)
        lowered = lower_program(parse_program(workload.source))
        baseline = run_program(workload.source, inputs=workload.inputs).outputs
        total = 0
        for proc in lowered.procedures.values():
            total += propagate_copies(proc)
        after = run_program(lowered, inputs=workload.inputs).outputs
        assert after == baseline
        validate_program(lowered)


class TestDCEIntegration:
    def test_copy_chain_becomes_dead(self):
        from repro.analysis.dce import eliminate_dead_code
        from repro.analysis.ssa import build_ssa
        from repro.analysis.valuenum import value_number

        lowered, _ = lowered_main(["n = 5", "m = n", "k = m", "write k"])
        proc = lowered.procedure("t")
        ssa = build_ssa(proc)
        numbering = value_number(ssa, lowered)
        stats = eliminate_dead_code(proc, numbering.expr_of, {})
        # the forwarding still leaves named copies (n, m live via k's
        # chain pre-SSA), but nothing breaks and the program still runs
        trace = run_program(lowered)
        assert trace.outputs == [5]
        validate_program(lowered)
