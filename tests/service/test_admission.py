"""Admission control: token buckets and the bounded waiting room."""

import pytest

from repro.resilience.errors import ServiceError
from repro.service.admission import AdmissionController, TokenBucket


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_empty(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2, clock=clock)
        assert bucket.try_take()
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_refill_is_fractional_and_capped(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3, clock=clock)
        for _ in range(3):
            assert bucket.try_take()
        clock.advance(0.25)  # half a token: still empty
        assert not bucket.try_take()
        clock.advance(0.25)  # the halves accumulate to one
        assert bucket.try_take()
        clock.advance(1000.0)  # refill never exceeds the burst
        for _ in range(3):
            assert bucket.try_take()
        assert not bucket.try_take()

    def test_zero_rate_is_a_hard_cap(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=0.0, burst=1, clock=clock)
        assert bucket.try_take()
        clock.advance(1e9)
        assert not bucket.try_take()


class TestAdmissionController:
    def make(self, **kwargs):
        clock = FakeClock()
        defaults = dict(queue_limit=2, tenant_rate=0.0, tenant_burst=10)
        defaults.update(kwargs)
        return AdmissionController(clock=clock, **defaults), clock

    def test_admit_and_leave_balance(self):
        controller, _ = self.make()
        controller.admit("a")
        assert controller.waiting == 1
        controller.leave()
        assert controller.waiting == 0

    def test_draining_rejects_before_any_gate(self):
        controller, _ = self.make(tenant_burst=0)  # bucket would also reject
        with pytest.raises(ServiceError) as exc_info:
            controller.admit("a", draining=True)
        assert exc_info.value.code == "RL552"
        assert controller.rejections["draining"] == 1
        # nothing was consumed: no bucket exists, no slot taken
        assert controller.waiting == 0
        assert controller.counters()["tenants"] == 0

    def test_rate_limit_is_per_tenant(self):
        controller, _ = self.make(tenant_burst=1, queue_limit=10)
        controller.admit("alice")
        with pytest.raises(ServiceError) as exc_info:
            controller.admit("alice")
        assert exc_info.value.code == "RL551"
        assert exc_info.value.kind == "rate-limited"
        controller.admit("bob")  # a different tenant is unaffected
        assert controller.waiting == 2

    def test_queue_full_is_typed_and_instant(self):
        controller, _ = self.make(queue_limit=1)
        controller.admit("a")
        with pytest.raises(ServiceError) as exc_info:
            controller.admit("b")
        assert exc_info.value.code == "RL550"
        assert exc_info.value.kind == "queue-full"
        assert controller.waiting == 1  # the rejected request took nothing

    def test_counters_shape(self):
        controller, _ = self.make(queue_limit=0)
        with pytest.raises(ServiceError):
            controller.admit("a")
        counters = controller.counters()
        assert counters["rejected_queue-full"] == 1
        assert counters["rejected_rate-limited"] == 0
        assert counters["waiting"] == 0
