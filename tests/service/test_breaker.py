"""The circuit breaker's ladder, trip, half-open probe, and recovery."""

import pytest

from repro.resilience.errors import ServiceError
from repro.service.breaker import CircuitBreaker, ServiceMode


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make(threshold=2, cooldown=5.0):
    clock = FakeClock()
    return CircuitBreaker(threshold, cooldown, clock), clock


class TestLadder:
    def test_healthy_breaker_serves_normal(self):
        breaker, _ = make()
        assert breaker.allow() is ServiceMode.NORMAL

    def test_each_threshold_drops_one_rung(self):
        breaker, _ = make(threshold=2)
        expected = [
            ServiceMode.NORMAL, ServiceMode.NORMAL,
            ServiceMode.DEGRADE, ServiceMode.DEGRADE,
            ServiceMode.COLD, ServiceMode.COLD,
            ServiceMode.FLOOR, ServiceMode.FLOOR,
        ]
        for mode in expected:
            assert breaker.allow() is mode
            breaker.record_failure()
        assert breaker.is_open()

    def test_open_refuses_with_rl553(self):
        breaker, _ = make(threshold=1, cooldown=10.0)
        for _ in range(4):
            breaker.record_failure()
        assert breaker.is_open()
        assert breaker.trips == 1
        with pytest.raises(ServiceError) as exc_info:
            breaker.allow()
        assert exc_info.value.code == "RL553"
        assert exc_info.value.kind == "breaker-open"

    def test_half_open_probe_after_cooldown_runs_at_floor(self):
        breaker, clock = make(threshold=1, cooldown=5.0)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(4.9)
        with pytest.raises(ServiceError):
            breaker.allow()
        clock.advance(0.2)
        assert breaker.allow() is ServiceMode.FLOOR

    def test_probe_failure_restarts_the_cooldown(self):
        breaker, clock = make(threshold=1, cooldown=5.0)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow() is ServiceMode.FLOOR
        breaker.record_failure()  # the probe failed
        with pytest.raises(ServiceError):
            breaker.allow()

    def test_success_repays_one_full_level(self):
        breaker, _ = make(threshold=2)
        for _ in range(4):
            breaker.record_failure()
        assert breaker.allow() is ServiceMode.COLD
        breaker.record_success()
        assert breaker.allow() is ServiceMode.DEGRADE
        breaker.record_success()
        assert breaker.allow() is ServiceMode.NORMAL
        breaker.record_success()  # never below zero strikes
        assert breaker.strikes == 0

    def test_state_renders_mode(self):
        breaker, _ = make(threshold=1)
        assert breaker.state()["mode"] == "normal"
        breaker.record_failure()
        assert breaker.state()["mode"] == "degrade"
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state()["mode"] == "open"
        assert breaker.state()["trips"] == 1

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
