"""The wire protocol: validation, error shapes, response re-addressing."""

import pytest

from repro.core.config import JumpFunctionKind
from repro.resilience.errors import (
    FailureRecord,
    format_cli_error,
)
from repro.service.protocol import (
    ProtocolError,
    error_response,
    parse_request,
    response_for,
)

SOURCE = "program main\n  integer x\n  x = 1\n  write x\nend\n"


class TestParseRequest:
    def test_minimal_request_fills_defaults(self):
        request = parse_request({"source": SOURCE}, default_id="req-1")
        assert request.id == "req-1"
        assert request.tenant == "default"
        assert request.analysis == "constprop"
        assert request.incremental is True
        assert request.timeout is None
        assert request.want_stats is False

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError):
            parse_request([1, 2], default_id="x")

    def test_empty_source_rejected(self):
        with pytest.raises(ProtocolError):
            parse_request({"source": "   "}, default_id="x")

    def test_unknown_analysis_rejected(self):
        with pytest.raises(ProtocolError, match="analysis"):
            parse_request(
                {"source": SOURCE, "analysis": "aliasing"}, default_id="x"
            )

    def test_unknown_config_key_rejected(self):
        with pytest.raises(ProtocolError, match="unknown or unserved"):
            parse_request(
                {"source": SOURCE, "config": {"warp_speed": 9}},
                default_id="x",
            )

    def test_unserved_axes_rejected(self):
        # complete mode and nested process pools are deliberately not
        # servable; the whitelist must refuse them, not pass them through
        for key in ("complete", "parallel_regions"):
            with pytest.raises(ProtocolError):
                parse_request(
                    {"source": SOURCE, "config": {key: 1}}, default_id="x"
                )

    def test_jump_function_coerced_to_enum(self):
        request = parse_request(
            {"source": SOURCE, "config": {"jump_function": "polynomial"}},
            default_id="x",
        )
        assert request.config.jump_function is JumpFunctionKind.POLYNOMIAL

    def test_bad_jump_function_rejected(self):
        with pytest.raises(ProtocolError, match="jump_function"):
            parse_request(
                {"source": SOURCE, "config": {"jump_function": "psychic"}},
                default_id="x",
            )

    def test_negative_budget_rejected(self):
        with pytest.raises(ProtocolError, match="max_evaluations"):
            parse_request(
                {"source": SOURCE, "config": {"max_evaluations": -1}},
                default_id="x",
            )

    def test_bad_timeout_rejected(self):
        with pytest.raises(ProtocolError, match="timeout"):
            parse_request({"source": SOURCE, "timeout": 0}, default_id="x")

    def test_to_json_reparses_equivalently(self):
        original = parse_request(
            {
                "id": "r9",
                "tenant": "alice",
                "source": SOURCE,
                "analysis": "copyprop",
                "config": {"jump_function": "literal", "max_meets": 7},
                "incremental": False,
                "timeout": 2.5,
                "stats": True,
            },
            default_id="x",
        )
        rebuilt = parse_request(original.to_json(), default_id="y")
        assert rebuilt == original


class TestErrorResponse:
    def test_service_error_carries_code_and_kind(self):
        body = error_response("r1", ProtocolError("nope"))
        assert body["status"] == "error"
        assert body["code"] == "RL555"
        assert body["kind"] == "bad-request"
        assert body["error"] == format_cli_error(ProtocolError("nope"))

    def test_failure_record_roundtrip_keeps_kind(self):
        record = FailureRecord.from_exception(
            "service", None, ValueError("boom")
        )
        rebuilt = FailureRecord.from_json(record.to_json())
        body = error_response("r2", rebuilt)
        assert body["kind"] == rebuilt.kind.value
        assert body["failure"]["kind"] == record.kind.value
        # the wire error line matches the CLI's rendering of the same record
        assert body["error"] == format_cli_error(rebuilt)

    def test_generic_exception_classified(self):
        body = error_response("r3", RuntimeError("weird"))
        assert body["status"] == "error"
        assert body["kind"] == "crash"
        assert "failure" in body


class TestResponseFor:
    def test_readdresses_id_and_served(self):
        template = {"id": "leader", "status": "ok", "served": "cold",
                    "result": {"constants_found": 1}}
        follower = parse_request(
            {"id": "f1", "source": SOURCE}, default_id="x"
        )
        body = response_for(template, follower, "dedup")
        assert body["id"] == "f1"
        assert body["served"] == "dedup"
        assert body["result"] == template["result"]
        assert template["id"] == "leader"  # the template is not mutated
