"""End-to-end exercises of the in-process :class:`AnalysisService`:
every rung of the robustness spine, without a subprocess in sight.
(The daemon-as-a-subprocess chaos tests live in ``test_daemon_chaos``.)
"""

import threading

import pytest

from repro.core.config import AnalysisConfig
from repro.core.driver import analyze
from repro.interp import run_program
from repro.interp.soundness import check_soundness
from repro.resilience import chaos
from repro.resilience.chaos import ChaosSpec, ChaosWorkerLoss, Fault
from repro.resilience.errors import Stage
from repro.service import AnalysisService, RequestJournal, ServicePolicy
from repro.service.server import make_http_server
from repro.store.artifacts import ArtifactStore

SOURCE = """
program main
  integer n
  n = 4
  call work(n, 10)
  write n
end
subroutine work(a, b)
  integer a, b
  a = a + b
  write b
end
"""

#: the call-graph cycle forces the solver past one monotone pass, so a
#: max_solver_passes=1 budget always exhausts (same trick as the budget
#: unit tests) — which is what drives the RL510 ladder inside the daemon.
RECURSIVE = """
program main
  integer n
  n = 3
  call ping(n, 8)
  write n
end
subroutine ping(a, b)
  integer a, b
  if (a > 0) then
    call pong(a - 1, b)
  endif
  write b
end
subroutine pong(c, d)
  integer c, d
  if (c > 0) then
    call ping(c - 1, d)
  endif
  write d
end
"""


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(autouse=True)
def no_chaos_leaks():
    yield
    chaos.uninstall()


class TestServingTiers:
    def test_cold_then_cache(self):
        service = AnalysisService()
        first = service.handle({"id": "a", "source": SOURCE})
        assert first["status"] == "ok"
        assert first["served"] == "cold"
        assert first["result"]["constants_found"] >= 1
        repeat = service.handle({"id": "b", "source": SOURCE})
        assert repeat["served"] == "cache"
        assert repeat["id"] == "b"
        assert repeat["result"] == first["result"]
        assert repeat["fingerprint"] == first["fingerprint"]

    def test_store_tier_survives_restart(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        first = AnalysisService(store=store).handle(
            {"id": "a", "source": SOURCE}
        )
        assert first["served"] == "cold"
        # a fresh daemon, same store: the response comes from disk
        reborn = AnalysisService(store=ArtifactStore(str(tmp_path / "store")))
        repeat = reborn.handle({"id": "b", "source": SOURCE})
        assert repeat["served"] == "store"
        assert repeat["result"] == first["result"]

    def test_second_flat_request_hits_the_slab_tier(self, tmp_path):
        # persist_responses off: the response cache cannot answer from
        # disk, so the second daemon must re-solve — but its solver
        # loads the slab the first one published (``served: "slab"``)
        policy = ServicePolicy(persist_responses=False)
        flat = {"flat_engine": True}
        first = AnalysisService(
            policy, store=ArtifactStore(str(tmp_path / "store"))
        ).handle({"id": "a", "source": SOURCE, "config": flat})
        assert first["served"] == "cold"
        reborn = AnalysisService(
            policy, store=ArtifactStore(str(tmp_path / "store"))
        )
        repeat = reborn.handle({"id": "b", "source": SOURCE, "config": flat})
        assert repeat["served"] == "slab"
        assert repeat["result"] == first["result"]
        assert reborn.served["slab"] == 1

    def test_persisted_responses_outrank_the_slab_tier(self, tmp_path):
        # default policy: the second daemon answers from the persisted
        # response without re-solving at all
        flat = {"flat_engine": True}
        store = ArtifactStore(str(tmp_path / "store"))
        first = AnalysisService(store=store).handle(
            {"id": "a", "source": SOURCE, "config": flat}
        )
        reborn = AnalysisService(store=ArtifactStore(str(tmp_path / "store")))
        repeat = reborn.handle({"id": "b", "source": SOURCE, "config": flat})
        assert repeat["served"] == "store"
        assert repeat["result"] == first["result"]

    def test_different_config_is_a_different_fingerprint(self):
        service = AnalysisService()
        first = service.handle({"id": "a", "source": SOURCE})
        other = service.handle(
            {
                "id": "b",
                "source": SOURCE,
                "config": {"jump_function": "literal"},
            }
        )
        assert other["served"] == "cold"
        assert other["fingerprint"] != first["fingerprint"]

    def test_incremental_resubmission_serves_warm(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        service = AnalysisService(store=store)
        service.handle({"id": "a", "source": SOURCE})
        edited = SOURCE.replace("n = 4", "n = 5")
        response = service.handle(
            {"id": "b", "source": edited, "incremental": True}
        )
        assert response["status"] == "ok"
        # the fingerprint diff found the previous snapshot: a warm solve,
        # not a cold one — and the answer matches a from-scratch run
        assert response["served"] == "warm"
        cold = analyze(edited, AnalysisConfig())
        assert (
            response["result"]["constants_found"] == cold.constants_found
        )


class TestDedup:
    def test_concurrent_identical_requests_coalesce(self):
        # the leader sleeps inside the solve; followers arrive meanwhile
        chaos.install(
            ChaosSpec(
                faults=(
                    Fault(
                        stage=Stage.SOLVE,
                        kind="sleep",
                        scope="sparse",
                        sleep_seconds=0.3,
                        max_firings=1,
                    ),
                )
            ),
            label="service",
        )
        service = AnalysisService()
        responses: dict[str, dict] = {}

        def submit(request_id: str):
            responses[request_id] = service.handle(
                {"id": request_id, "source": SOURCE}
            )

        threads = [
            threading.Thread(target=submit, args=(f"r{i}",)) for i in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        served = sorted(r["served"] for r in responses.values())
        # exactly one solve; everyone else coalesced onto it (a straggler
        # that arrived after completion reads the cache instead)
        assert served.count("cold") == 1
        assert all(kind in ("cold", "dedup", "cache") for kind in served)
        assert served.count("dedup") >= 1
        results = {str(r["result"]) for r in responses.values()}
        assert len(results) == 1
        assert service.stats()["dedup"]["coalesced"] >= 1


class TestAdmission:
    def test_rate_limited_submission_is_rl551(self):
        clock = FakeClock()
        service = AnalysisService(
            ServicePolicy(tenant_rate=0.0, tenant_burst=1), clock=clock
        )
        ok = service.handle({"id": "a", "source": SOURCE})
        assert ok["status"] == "ok"
        # same tenant, *different* program: no cache to hide behind
        rejected = service.handle({"id": "b", "source": RECURSIVE})
        assert rejected["status"] == "error"
        assert rejected["code"] == "RL551"
        assert rejected["kind"] == "rate-limited"

    def test_cache_still_answers_while_rate_limited(self):
        clock = FakeClock()
        service = AnalysisService(
            ServicePolicy(tenant_rate=0.0, tenant_burst=1), clock=clock
        )
        service.handle({"id": "a", "source": SOURCE})
        repeat = service.handle({"id": "b", "source": SOURCE})
        # the dedup/cache tier sits in front of admission: repeats of
        # finished work still complete under overload
        assert repeat["status"] == "ok"
        assert repeat["served"] == "cache"

    def test_queue_full_is_rl550(self):
        service = AnalysisService(ServicePolicy(queue_limit=0))
        rejected = service.handle({"id": "a", "source": SOURCE})
        assert rejected["status"] == "error"
        assert rejected["code"] == "RL550"


class TestDeadline:
    def test_expired_deadline_is_rl554(self):
        service = AnalysisService()
        response = service.handle(
            {"id": "a", "source": SOURCE, "timeout": 1e-9}
        )
        assert response["status"] == "error"
        assert response["code"] == "RL554"
        assert response["kind"] == "deadline"

    def test_deadline_does_not_strike_the_breaker(self):
        service = AnalysisService()
        service.handle({"id": "a", "source": SOURCE, "timeout": 1e-9})
        assert service.breaker.strikes == 0


class TestBreaker:
    def crash_spec(self, firings: int) -> ChaosSpec:
        # JUMP_FUNCTIONS crashes have no in-pipeline fallback (unlike
        # SOLVE/sparse, which the dense solver would recover), so each
        # one is a real solver failure and strikes the breaker
        return ChaosSpec(
            faults=(
                Fault(
                    stage=Stage.JUMP_FUNCTIONS,
                    kind="crash",
                    max_firings=firings,
                ),
            )
        )

    def test_failures_walk_the_service_ladder(self):
        clock = FakeClock()
        service = AnalysisService(
            ServicePolicy(breaker_threshold=2, breaker_cooldown=5.0),
            clock=clock,
        )
        chaos.install(self.crash_spec(2), label="service")
        for index in range(2):
            response = service.handle(
                {"id": f"c{index}", "tenant": f"t{index}", "source": SOURCE}
            )
            assert response["status"] == "error"
        assert service.breaker.state()["mode"] == "degrade"
        # the fault is exhausted: the next request succeeds, but runs —
        # and says it ran — in the breaker's degraded mode
        degraded = service.handle({"id": "d", "tenant": "td", "source": SOURCE})
        assert degraded["status"] == "ok"
        assert degraded["mode"] == "degrade"
        assert any(
            "RL557" in note for note in degraded["service_degradations"]
        )
        # ...and that success repaid a level
        assert service.breaker.state()["mode"] == "normal"

    def test_degraded_responses_are_never_cached(self):
        clock = FakeClock()
        service = AnalysisService(
            ServicePolicy(breaker_threshold=1), clock=clock
        )
        chaos.install(self.crash_spec(1), label="service")
        service.handle({"id": "c", "tenant": "t1", "source": SOURCE})
        degraded = service.handle(
            {"id": "d", "tenant": "t2", "source": SOURCE}
        )
        assert degraded["mode"] == "degrade"
        repeat = service.handle({"id": "e", "tenant": "t3", "source": SOURCE})
        # the repeat re-solved (now healthy): no degraded answer was cached
        assert repeat["served"] == "cold"
        assert repeat["mode"] == "normal"

    def test_open_breaker_refuses_then_probes_at_floor(self):
        clock = FakeClock()
        service = AnalysisService(
            ServicePolicy(breaker_threshold=1, breaker_cooldown=5.0),
            clock=clock,
        )
        chaos.install(self.crash_spec(4), label="service")
        for index in range(4):
            service.handle(
                {"id": f"c{index}", "tenant": f"t{index}", "source": SOURCE}
            )
        assert service.breaker.is_open()
        assert not service.ready()
        refused = service.handle(
            {"id": "r", "tenant": "tr", "source": SOURCE}
        )
        assert refused["code"] == "RL553"
        clock.advance(5.1)
        probe = service.handle({"id": "p", "tenant": "tp", "source": SOURCE})
        # the half-open probe runs at the intraprocedural floor: cheap,
        # sound, and loudly marked
        assert probe["status"] == "ok"
        assert probe["mode"] == "floor"
        assert any("RL557" in note for note in probe["service_degradations"])


class TestBudgetDegradation:
    def test_budget_exhaustion_degrades_marked_and_sound(self):
        service = AnalysisService()
        response = service.handle(
            {
                "id": "a",
                "source": RECURSIVE,
                "config": {"max_solver_passes": 1},
            }
        )
        assert response["status"] == "ok"
        # the RL510 family rode back in the response — never silent
        assert response["degradations"]
        assert any("RL51" in line for line in response["degradations"])
        assert any("RL51" in line for line in response["diagnostics"])
        # interpreter-checked soundness: the degraded VAL's claims hold
        # on a real execution of the same program under the same config
        result = analyze(
            RECURSIVE, AnalysisConfig(max_solver_passes=1)
        )
        assert result.degradations  # same ladder the service walked
        trace = run_program(RECURSIVE)
        assert check_soundness(result, trace) == []

    def test_degraded_result_is_not_cached(self):
        service = AnalysisService()
        payload = {
            "id": "a",
            "source": RECURSIVE,
            "config": {"max_solver_passes": 1},
        }
        first = service.handle(payload)
        assert first["degradations"]
        repeat = service.handle(dict(payload, id="b"))
        assert repeat["served"] == "cold"  # re-solved, not replayed


class TestJournal:
    def kill_spec(self) -> ChaosSpec:
        return ChaosSpec(
            faults=(
                Fault(
                    stage=Stage.SERVICE,
                    kind="kill",
                    scope="admitted",
                    max_firings=1,
                ),
            )
        )

    def test_kill_after_begin_leaves_interrupted_entry(self, tmp_path):
        journal_path = str(tmp_path / "requests.jsonl")
        chaos.install(self.kill_spec(), label="service")
        service = AnalysisService(journal=RequestJournal(journal_path))
        with pytest.raises(ChaosWorkerLoss):
            service.handle({"id": "k1", "source": SOURCE})
        interrupted = RequestJournal(journal_path).interrupted()
        assert [event["id"] for event in interrupted] == ["k1"]
        # the journaled payload is the full request: replayable as-is
        assert interrupted[0]["request"]["source"] == SOURCE

    def test_restart_replays_deterministically(self, tmp_path):
        journal_path = str(tmp_path / "requests.jsonl")
        chaos.install(self.kill_spec(), label="service")
        service = AnalysisService(journal=RequestJournal(journal_path))
        with pytest.raises(ChaosWorkerLoss):
            service.handle({"id": "k1", "source": SOURCE})
        chaos.uninstall()
        reborn = AnalysisService(journal=RequestJournal(journal_path))
        assert reborn.recovered == [{"id": "k1", "status": "replayed"}]
        # the replayed solve was published: the client's retry is instant
        retry = reborn.handle({"id": "k2", "source": SOURCE})
        assert retry["served"] == "cache"
        # terminal: a second restart has nothing left to recover
        assert RequestJournal(journal_path).interrupted() == []
        assert AnalysisService(
            journal=RequestJournal(journal_path)
        ).recovered == []

    def test_restart_can_refuse_instead(self, tmp_path):
        journal_path = str(tmp_path / "requests.jsonl")
        chaos.install(self.kill_spec(), label="service")
        service = AnalysisService(journal=RequestJournal(journal_path))
        with pytest.raises(ChaosWorkerLoss):
            service.handle({"id": "k1", "source": SOURCE})
        chaos.uninstall()
        reborn = AnalysisService(
            ServicePolicy(replay=False), journal=RequestJournal(journal_path)
        )
        assert reborn.recovered == [
            {"id": "k1", "status": "refused", "code": "RL556"}
        ]
        # refusal is terminal too
        assert RequestJournal(journal_path).interrupted() == []

    def test_completed_requests_are_not_replayed(self, tmp_path):
        journal_path = str(tmp_path / "requests.jsonl")
        service = AnalysisService(journal=RequestJournal(journal_path))
        assert service.handle({"id": "a", "source": SOURCE})["status"] == "ok"
        reborn = AnalysisService(journal=RequestJournal(journal_path))
        assert reborn.recovered == []


class TestDrain:
    def test_drain_refuses_with_rl552(self):
        service = AnalysisService()
        assert service.drain(timeout=0.1)
        response = service.handle({"id": "a", "source": SOURCE})
        assert response["status"] == "error"
        assert response["code"] == "RL552"
        assert not service.ready()
        assert service.healthy()
        assert service.stats()["draining"] is True


class TestDispatch:
    def test_copyprop_and_modref_serve_their_facts(self):
        service = AnalysisService()
        copyprop = service.handle(
            {"id": "a", "source": SOURCE, "analysis": "copyprop"}
        )
        assert copyprop["status"] == "ok"
        assert "copy_facts" in copyprop["result"]
        modref = service.handle(
            {"id": "b", "source": SOURCE, "analysis": "modref"}
        )
        assert modref["status"] == "ok"
        assert modref["result"]["cross_check"] == []
        summaries = modref["result"]["summaries"]
        assert "work" in summaries
        assert "a" in summaries["work"]["mod"]

    def test_analyses_have_distinct_fingerprints(self):
        service = AnalysisService()
        plain = service.handle({"id": "a", "source": SOURCE})
        copies = service.handle(
            {"id": "b", "source": SOURCE, "analysis": "copyprop"}
        )
        assert copies["served"] == "cold"
        assert copies["fingerprint"] != plain["fingerprint"]

    def test_stats_rides_along_when_requested(self):
        service = AnalysisService()
        response = service.handle(
            {"id": "a", "source": SOURCE, "stats": True}
        )
        assert "solver_counters" in response["stats"]


class TestHttpTransport:
    @pytest.fixture()
    def http(self):
        import json
        import urllib.request

        service = AnalysisService()
        server = make_http_server(service, "127.0.0.1", 0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()

        def call(method, path, payload=None):
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}{path}",
                data=(
                    json.dumps(payload).encode() if payload is not None else None
                ),
                method=method,
            )
            try:
                with urllib.request.urlopen(request, timeout=10) as reply:
                    return reply.status, json.loads(reply.read())
            except urllib.error.HTTPError as error:
                return error.code, json.loads(error.read())

        yield service, call
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    def test_analyze_health_ready_stats(self, http):
        service, call = http
        status, body = call("GET", "/healthz")
        assert (status, body["status"]) == (200, "ok")
        status, body = call("GET", "/readyz")
        assert (status, body["status"]) == (200, "ready")
        status, body = call("POST", "/analyze", {"id": "a", "source": SOURCE})
        assert status == 200
        assert body["status"] == "ok"
        assert body["served"] == "cold"
        status, body = call("POST", "/analyze", {"id": "b", "source": SOURCE})
        assert body["served"] == "cache"
        status, body = call("GET", "/stats")
        assert status == 200
        assert body["served"]["cache"] == 1

    def test_typed_rejections_map_to_http_statuses(self, http):
        service, call = http
        status, body = call("POST", "/analyze", {"source": ""})
        assert (status, body["code"]) == (400, "RL555")
        status, body = call("GET", "/nope")
        assert status == 404
        service.drain(timeout=0.1)
        status, body = call("POST", "/analyze", {"id": "x", "source": SOURCE})
        assert (status, body["code"]) == (503, "RL552")
        status, body = call("GET", "/readyz")
        assert (status, body["status"]) == (503, "draining")
