"""Chaos-tested recovery of the *real* daemon subprocess.

The in-process tests prove the lifecycle logic; these prove the process:
``repro serve`` is booted as a subprocess, killed mid-request by an
armed chaos fault (``os._exit(17)`` at the service stage — after the
journal's fsync'd ``begin``, before ``done``), restarted on the same
journal and store, and must recover deterministically: the interrupted
request replays, its result lands in the store, and the client's retry
answers warm. No response the restarted daemon serves is ever stale —
a replay is a complete re-solve of the journaled payload.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

SOURCE = """
program main
  integer n
  n = 4
  call work(n, 10)
  write n
end
subroutine work(a, b)
  integer a, b
  a = a + b
  write b
end
"""

KILL_SPEC = json.dumps(
    {
        "faults": [
            {
                "stage": "service",
                "kind": "kill",
                "scope": "admitted",
                "max_firings": 1,
            }
        ]
    }
)

_LISTENING = re.compile(r"listening on http://[\d.]+:(\d+)/")


def spawn_http(tmp_path, *extra):
    """Boot an HTTP daemon on an ephemeral port; return (proc, port)."""
    env = dict(os.environ, PYTHONPATH="src", PYTHONUNBUFFERED="1")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "--http", "0",
            "--store", str(tmp_path / "store"),
            "--journal", str(tmp_path / "requests.jsonl"),
            *extra,
        ],
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = proc.stderr.readline()
        if not line:
            break
        match = _LISTENING.search(line)
        if match:
            return proc, int(match.group(1))
    proc.kill()
    raise AssertionError("daemon never reported its port")


def post(port, payload, timeout=30):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/analyze",
        data=json.dumps(payload).encode(),
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as reply:
        return json.loads(reply.read())


@pytest.mark.slow
class TestDaemonChaos:
    def test_kill_mid_request_then_restart_recovers(self, tmp_path):
        proc, port = spawn_http(tmp_path, "--chaos", KILL_SPEC)
        try:
            # the armed fault os._exit(17)s the daemon *after* the
            # journal's begin: the request dies on the wire
            with pytest.raises(
                (urllib.error.URLError, ConnectionError, OSError)
            ):
                post(port, {"id": "k1", "source": SOURCE}, timeout=15)
            assert proc.wait(timeout=15) == 17
        finally:
            if proc.poll() is None:
                proc.kill()

        journal = (tmp_path / "requests.jsonl").read_text().splitlines()
        events = [json.loads(line) for line in journal]
        assert [e["kind"] for e in events] == ["header", "begin"]

        # restart (no chaos): the journal replays the interrupted solve
        proc, port = spawn_http(tmp_path)
        try:
            retry = post(port, {"id": "k2", "source": SOURCE})
            assert retry["status"] == "ok"
            # the replayed result was published to the store, so the
            # retry answers from a warm tier, never a fresh cold solve
            assert retry["served"] in ("cache", "store")
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=15) == 0
        finally:
            if proc.poll() is None:
                proc.kill()

        events = [
            json.loads(line)
            for line in (tmp_path / "requests.jsonl").read_text().splitlines()
        ]
        recovered = [e for e in events if e["kind"] == "recovered"]
        assert [e["status"] for e in recovered] == ["replayed"]

    def test_sigterm_drains_cleanly(self, tmp_path):
        proc, port = spawn_http(tmp_path)
        try:
            assert post(port, {"id": "a", "source": SOURCE})["status"] == "ok"
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=15) == 0
            assert "drained cleanly" in proc.stderr.read()
        finally:
            if proc.poll() is None:
                proc.kill()


@pytest.mark.slow
class TestStdioDaemon:
    def test_stdio_round_trip(self, tmp_path):
        env = dict(os.environ, PYTHONPATH="src", PYTHONUNBUFFERED="1")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--journal", str(tmp_path / "requests.jsonl")],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            requests = [
                {"id": "s1", "source": SOURCE},
                {"id": "s2", "source": SOURCE},
                {"id": "s3", "source": "not a program"},
            ]
            for payload in requests:
                proc.stdin.write(json.dumps(payload) + "\n")
            proc.stdin.close()
            lines = [json.loads(line) for line in proc.stdout]
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
        assert [r["id"] for r in lines] == ["s1", "s2", "s3"]
        assert lines[0]["served"] == "cold"
        assert lines[1]["served"] == "cache"
        assert lines[2]["status"] == "error"
