"""Tests for the command-line interface."""

import pytest

from repro.cli import main

SOURCE = """
program main
  integer n
  n = 4
  call s(n)
  call s(9)
  read m
  write m
end
subroutine s(a)
  integer a
  write a * 2
end
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.f"
    path.write_text(SOURCE)
    return str(path)


class TestAnalyze:
    def test_basic(self, source_file, capsys):
        assert main(["analyze", source_file]) == 0
        out = capsys.readouterr().out
        assert "pass_through" in out
        assert "constants substituted" in out

    def test_jump_function_choice(self, source_file, capsys):
        assert main(["analyze", source_file, "--jump-function", "literal"]) == 0
        assert "literal" in capsys.readouterr().out

    def test_flags(self, source_file, capsys):
        assert (
            main(
                [
                    "analyze",
                    source_file,
                    "--no-mod",
                    "--no-returns",
                    "--complete",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "no-mod" in out and "no-rjf" in out and "complete" in out

    def test_transform_prints_source(self, source_file, capsys):
        assert main(["analyze", source_file, "--transform"]) == 0
        assert "program main" in capsys.readouterr().out

    def test_stats_prints_timings_and_counters(self, source_file, capsys):
        assert main(["analyze", source_file, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "per-stage timings" in out
        assert "solve" in out and "ms" in out
        assert "pops" in out and "passes" in out
        assert "stage0_cache_hits" in out

    def test_parse_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.f"
        bad.write_text("program p\nn = \nend\n")
        assert main(["analyze", str(bad)]) == 1
        assert "error" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["analyze", "/nonexistent.f"]) == 1
        assert "error" in capsys.readouterr().err


class TestRun:
    def test_executes_and_prints_outputs(self, source_file, capsys):
        assert main(["run", source_file, "--input", "7"]) == 0
        captured = capsys.readouterr()
        assert captured.out.splitlines() == ["8", "18", "7"]
        assert "steps" in captured.err

    def test_runtime_error_exit_code(self, tmp_path, capsys):
        path = tmp_path / "div.f"
        path.write_text("program p\nn = 0\nwrite 1 / n\nend\n")
        assert main(["run", str(path)]) == 1
        assert "runtime error" in capsys.readouterr().err


class TestTables:
    def test_fig1(self, capsys):
        assert main(["tables", "--which", "fig1"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_table1_scaled(self, capsys):
        assert main(["tables", "--which", "1", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "ocean" in out


class TestWorkload:
    def test_print_workload(self, capsys):
        assert main(["workload", "trfd", "--scale", "0.3"]) == 0
        assert "program trfd" in capsys.readouterr().out

    def test_save_workload(self, tmp_path, capsys):
        target = tmp_path / "w.f"
        assert main(
            ["workload", "mdg", "--scale", "0.3", "-o", str(target)]
        ) == 0
        assert target.exists()
        assert "wrote" in capsys.readouterr().out

    def test_unknown_name(self, capsys):
        assert main(["workload", "nope"]) == 1
        assert "unknown workload" in capsys.readouterr().err


class TestClone:
    def test_clone_reports_recovery(self, source_file, capsys):
        assert main(["clone", source_file]) == 0
        out = capsys.readouterr().out
        assert "constants before" in out
        assert "clones created:   1" in out

    def test_clone_transform(self, source_file, capsys):
        assert main(["clone", source_file, "--transform"]) == 0
        assert "s_c1" in capsys.readouterr().out
