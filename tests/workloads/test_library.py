"""Tests for the BLAS-style library workload."""

import pytest

from repro import analyze
from repro.depend import classify_loops, classify_subscripts
from repro.frontend import parse_program
from repro.interp import check_soundness, run_program
from repro.workloads.library import library_program


@pytest.fixture(scope="module")
def result():
    return analyze(library_program())


class TestWellFormed:
    def test_parses(self):
        program = parse_program(library_program())
        assert program.main == "bench"
        assert len(program.procedures) >= 10

    def test_runs(self):
        trace = run_program(library_program(), inputs=[2, 4])
        assert len(trace.outputs) == 1

    def test_analyzer_sound_on_library(self, result):
        trace = run_program(library_program(), inputs=[2, 4])
        assert check_soundness(result, trace) == []


class TestShenLiYew(object):
    def test_roughly_half_recovered(self, result):
        before = classify_subscripts(result, constants_env=False)
        after = classify_subscripts(result, constants_env=True)
        improved = before.nonlinear - after.nonlinear
        assert 0.4 <= improved / before.nonlinear <= 0.8

    def test_runtime_strides_stay_nonlinear(self, result):
        after = classify_subscripts(result, constants_env=True)
        nonlinear_procs = {s.procedure for s in after.nonlinear_sites()}
        assert nonlinear_procs <= {"vgather", "submat", "interleave"}
        assert "matmul2" not in nonlinear_procs

    def test_lda_subscripts_linear_with_constants(self, result):
        after = classify_subscripts(result, constants_env=True)
        matmul_sites = [s for s in after.sites if s.procedure == "matmul2"]
        assert matmul_sites
        assert all(s.is_linear for s in matmul_sites)


class TestEigenmannBlume:
    def test_profitability_needs_constants(self, result):
        before = classify_loops(result, constants_env=False)
        after = classify_loops(result, constants_env=True)
        assert sum(v.profitable for v in before) == 0
        assert sum(v.profitable for v in after) >= 8

    def test_reduction_loops_parallel(self, result):
        after = classify_loops(result, constants_env=True)
        matvec_inner = [
            v for v in after if v.procedure == "matvec" and v.depth == 1
        ]
        assert matvec_inner and matvec_inner[0].parallelizable
