"""Tests for the workload generator and suite."""

import pytest

from repro.frontend import parse_program
from repro.interp import run_program
from repro.workloads import PROFILES, generate, load, load_suite, suite_names
from repro.workloads.profiles import WorkloadProfile


class TestDeterminism:
    def test_same_profile_same_source(self):
        profile = PROFILES["mdg"]
        assert generate(profile).source == generate(profile).source

    def test_different_seeds_differ(self):
        base = PROFILES["mdg"]
        other = WorkloadProfile(name="mdg2", seed=base.seed + 1,
                                literal_args=base.literal_args)
        assert generate(base).source != generate(other).source

    def test_load_caches(self):
        assert load("trfd") is load("trfd")

    def test_suite_names_are_the_papers(self):
        assert suite_names() == [
            "adm", "doduc", "fpppp", "linpackd", "matrix300", "mdg",
            "ocean", "qcd", "simple", "snasa7", "spec77", "trfd",
        ]


class TestWellFormedness:
    @pytest.mark.parametrize("name", suite_names())
    def test_parses(self, name):
        workload = load(name)
        program = parse_program(workload.source)
        assert program.main == name

    @pytest.mark.parametrize("name", suite_names())
    def test_runs_to_completion(self, name):
        workload = load(name)
        trace = run_program(workload.source, inputs=workload.inputs,
                            max_steps=5_000_000)
        assert trace.outputs  # every workload writes something

    @pytest.mark.parametrize("name", suite_names())
    def test_every_procedure_invoked(self, name):
        """No dead procedures: every generated routine actually runs."""
        workload = load(name)
        program = parse_program(workload.source)
        trace = run_program(workload.source, inputs=workload.inputs,
                            max_steps=5_000_000)
        for proc_name in program.procedures:
            if proc_name == program.main:
                continue
            assert trace.invocations(proc_name), f"{proc_name} never called"

    def test_scaled_profile_smaller(self):
        full = load("ocean")
        small = load("ocean", scale=0.3)
        assert small.line_count < full.line_count

    def test_scaled_still_runs(self):
        small = load("spec77", scale=0.3)
        trace = run_program(small.source, inputs=small.inputs)
        assert trace.outputs


class TestShapeKnobs:
    def test_skewed_programs_have_one_big_routine(self):
        for name in ("fpppp", "simple"):
            program = parse_program(load(name).source)
            sizes = sorted(program.lines_per_procedure().values())
            assert sizes[-1] > 3 * sizes[len(sizes) // 2], name

    def test_ocean_has_init_routine(self):
        program = parse_program(load("ocean").source)
        assert "init" in program.procedures

    def test_read_kills_consume_inputs(self):
        workload = load("spec77")
        assert len(workload.inputs) == PROFILES["spec77"].read_kills

    def test_characteristics_table_shape(self):
        program = parse_program(load("trfd").source)
        chars = program.characteristics()
        assert chars["lines"] > 50
        assert chars["procedures"] >= 5
