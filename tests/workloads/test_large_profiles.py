"""The ``large`` workload family: 1k-procedure corpora for the scaling
tier. Generation and analysis of these take seconds, so everything here
is ``slow``-marked; the fast suite checks the profiles only by scaled-
down proxy (and the flat-engine benchmark gates run them in full)."""

import pytest

from repro.analysis.ssa import ensure_global_symbols
from repro.callgraph import build_call_graph, compute_modref
from repro.core.builder import build_forward_jump_functions
from repro.core.config import AnalysisConfig, JumpFunctionKind
from repro.core.returns import build_return_jump_functions
from repro.core.solver import solve
from repro.frontend import parse_program
from repro.ir import lower_program
from repro.workloads.profiles import LARGE_PROFILES, PROFILES
from repro.workloads.suite import large_names, load, suite_names


def pipeline(source, config):
    program = parse_program(source)
    lowered = lower_program(program)
    ensure_global_symbols(lowered)
    graph = build_call_graph(lowered)
    modref = compute_modref(lowered, graph)
    returns = build_return_jump_functions(lowered, graph, modref, config)
    forward = build_forward_jump_functions(lowered, modref, returns, config)
    return lowered, graph, forward


class TestTiering:
    """Fast checks: the large family must stay out of the default suite
    (Table experiments and suite-wide differential tests iterate it)."""

    def test_large_names_disjoint_from_suite(self):
        assert not set(large_names()) & set(suite_names())

    def test_large_profiles_not_in_table_profiles(self):
        assert not set(LARGE_PROFILES) & set(PROFILES)

    def test_load_resolves_large_names(self):
        # scaled far down so this stays in the fast tier
        workload = load("large_scc", scale=0.02)
        assert workload.source

    def test_scaled_preserves_ring_shape(self):
        profile = LARGE_PROFILES["large_scc"].scaled(0.01)
        assert profile.scc_ring >= 1
        assert profile.scc_depth == LARGE_PROFILES["large_scc"].scc_depth


@pytest.mark.slow
class TestLargeCorpora:
    @pytest.mark.parametrize("name", large_names())
    def test_reaches_a_thousand_procedures(self, name):
        workload = load(name)
        config = AnalysisConfig(jump_function=JumpFunctionKind.POLYNOMIAL)
        lowered, graph, forward = pipeline(workload.source, config)
        result = solve(lowered, graph, forward)
        assert len(result.reached) >= 900
        assert len(lowered.procedures) >= 1000

    def test_flat_matches_object_on_the_scc_ring(self):
        # the 880-member ring is the drain-heavy shape: hundreds of
        # batches through phase 2, the flat engine's hardest path
        workload = load("large_scc")
        config = AnalysisConfig(jump_function=JumpFunctionKind.POLYNOMIAL)
        lowered, graph, forward = pipeline(workload.source, config)
        obj = solve(lowered, graph, forward)
        flat = solve(lowered, graph, forward, flat=True)
        assert flat.reached == obj.reached
        assert {
            proc: {key: (type(v), v) for key, v in env.items()}
            for proc, env in flat.val.items()
        } == {
            proc: {key: (type(v), v) for key, v in env.items()}
            for proc, env in obj.val.items()
        }
        assert flat.batch_drains >= 100
