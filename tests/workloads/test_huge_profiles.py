"""The ``huge`` workload family: the ~10k-procedure persistent-slab
tier. Full generation and analysis take tens of seconds, so the big
corpus test is ``slow``-marked (the CI ``huge`` job and the slab-store
benchmark gate run it in full); the fast suite checks tiering and a
scaled-down proxy only."""

import pytest

from repro.core.config import AnalysisConfig, JumpFunctionKind
from repro.core.driver import Analyzer
from repro.workloads.profiles import HUGE_PROFILES, LARGE_PROFILES, PROFILES
from repro.workloads.suite import huge_names, large_names, load, suite_names


class TestTiering:
    """Fast checks: the huge family must stay out of both the default
    suite and the 1k scaling tier."""

    def test_huge_names_disjoint_from_other_tiers(self):
        assert not set(huge_names()) & set(suite_names())
        assert not set(huge_names()) & set(large_names())

    def test_huge_profiles_not_in_other_profile_maps(self):
        assert not set(HUGE_PROFILES) & set(PROFILES)
        assert not set(HUGE_PROFILES) & set(LARGE_PROFILES)

    def test_load_resolves_huge_names(self):
        # scaled far down so this stays in the fast tier
        workload = load("huge_fanout", scale=0.005)
        assert workload.source


@pytest.mark.slow
class TestHugeCorpus:
    def test_ten_thousand_procedures_flat_with_store(self):
        workload = load("huge_fanout")
        config = AnalysisConfig(
            jump_function=JumpFunctionKind.POLYNOMIAL, flat_engine=True
        )
        analyzer = Analyzer(workload.source)
        cold = analyzer.run(config)
        assert len(cold.solved.reached) >= 10_000
        assert cold.solved.slab_slots >= 100_000
        assert cold.degradations == ()
        # the cold run published its slab: the rerun loads, not builds
        warm = analyzer.run(config)
        assert warm.incremental.mode == "slab"
        assert warm.solved.slab_build_seconds == 0.0
        assert warm.solved.val == cold.solved.val
