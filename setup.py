"""Legacy setup shim.

Kept so ``pip install -e .`` works on environments without the ``wheel``
package (PEP 660 editable installs need it; ``setup.py develop`` does not).
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
