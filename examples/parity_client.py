"""A complete framework client in ~40 lines: interprocedural parity.

The walkthrough for `repro.framework`: pick a lattice, translate the
stage-2 jump functions into edge functions, seed the roots — the shared
engine (worklist, region scheduling, memoization, counters) does the
rest. Parity tracks whether each procedure's entry values are provably
even or odd: coarser than constant propagation on constants, but it
survives *some* arithmetic constprop gives up on is irrelevant here —
the point is the recipe, kept deliberately small.

Run:  python examples/parity_client.py
"""

from repro import AnalysisConfig
from repro.analysis.ssa import ensure_global_symbols
from repro.callgraph import build_call_graph, compute_modref
from repro.core.builder import build_forward_jump_functions
from repro.core.engine import entry_keys
from repro.core.exprs import EntryExpr
from repro.core.lattice import BOTTOM, TOP, is_constant
from repro.core.returns import build_return_jump_functions
from repro.framework import (
    AnalysisClient,
    BottomEdge,
    ConstantEdge,
    FlowIndex,
    IdentityEdge,
    Lattice,
    flow_edge,
    solve_client,
)
from repro.frontend import parse_program
from repro.frontend.symbols import GlobalId
from repro.ir import lower_program

# ── the client: everything a new analysis needs to define ──────────────


def parity(value):
    return "even" if int(value) % 2 == 0 else "odd"


class ParityLattice(Lattice):
    """⊤ > {even, odd} > ⊥ — Figure 1's shape with two constants."""

    top = TOP
    bottom = BOTTOM

    def meet(self, a, b):
        if a is TOP:
            return b
        if b is TOP or a == b:
            return a
        return BOTTOM

    def is_bottom(self, value):
        return value is BOTTOM


class ParityClient(AnalysisClient):
    """Parity of every procedure's entry values, from the same stage-2
    jump functions constant propagation solves over."""

    name = "parity"
    lattice = ParityLattice()

    def __init__(self, forward):
        self.forward = forward

    def entry_keys(self, lowered, graph):
        return entry_keys(lowered)

    def initial_env(self, lowered, graph):
        val = super().initial_env(lowered, graph)  # ⊤ everywhere
        main_env = val[lowered.program.main]
        for gid in main_env:  # boundary facts: the main program's globals
            data = lowered.program.globals[gid].data_value
            main_env[gid] = parity(data) if isinstance(data, int) else BOTTOM
        return val

    def roots(self, lowered, graph):
        return (lowered.program.main,)

    def flow_edges(self, lowered, graph):
        index = self.forward.support_index(lowered)  # stage-2 bindings
        edges = []
        for binding_edges in index.seeds.values():
            for e in binding_edges:
                if e.const is not None and is_constant(e.const):
                    func = ConstantEdge(parity(e.const))  # fold the literal
                elif e.expr.__class__ is EntryExpr:
                    func = IdentityEdge(e.expr.key)  # parity rides through
                else:
                    func = BottomEdge()  # arithmetic: give up (soundly)
                edges.append(flow_edge(e.site_id, e.caller, e.callee, e.key, func))
        return FlowIndex.build(edges, kill_sources=dict(index.kills))


# ── drive it over a program ────────────────────────────────────────────

SOURCE = """
program demo
  common /cfg/ stride
  integer stride, n
  n = 6
  call walk(n)
  call walk(14)
  call walk(stride)
end
subroutine walk(step)
  integer step
  write step
end
"""

DATA = {GlobalId("cfg", 0): 8}  # stride starts even


def main():
    program = parse_program(SOURCE)
    for gid, value in DATA.items():
        program.globals[gid].data_value = value
    lowered = lower_program(program)
    ensure_global_symbols(lowered)
    graph = build_call_graph(lowered)
    config = AnalysisConfig()
    modref = compute_modref(lowered, graph)
    returns = build_return_jump_functions(lowered, graph, modref, config)
    forward = build_forward_jump_functions(lowered, modref, returns, config)

    result = solve_client(lowered, graph, ParityClient(forward))
    for proc in sorted(result.val):
        facts = {
            str(key): value
            for key, value in result.val[proc].items()
            if value in ("even", "odd")
        }
        print(f"PARITY({proc}) = {facts}")
    # every call site passes an even value, so the callee knows its
    # formal's parity even though 6, 14, and stride never meet to a
    # single constant:
    assert result.val["walk"]["step"] == "even"


if __name__ == "__main__":
    main()
