"""One-program replica of the study: all four jump functions side by side.

Builds a program containing one instance of each constant-flow class the
jump functions are distinguished by, runs all four, and shows exactly
which class each implementation captures — §3.1's taxonomy, executable.

Run:  python examples/compare_jump_functions.py
"""

from repro import AnalysisConfig, Analyzer, JumpFunctionKind

SOURCE = """
program study
  integer v
  common /gd/ gshare
  integer gshare
  gshare = 77
  ! class 1: a literal constant at the call site
  call use1(42)
  ! class 2: an intraprocedural constant (computed, then passed)
  v = 6 * 7
  call use2(v)
  ! class 3: pass-through (a formal forwarded unmodified, depth 2)
  call forward(13)
  ! class 5: a global passed implicitly
  call use5
end

subroutine forward(x)
  integer x
  ! x flows through this body untouched: pass-through jump function
  call use3(x)
  ! class 4: a polynomial of the incoming formal
  call use4(2 * x + 1)
end

subroutine use1(a)
  integer a
  write a
end

subroutine use2(b)
  integer b
  write b
end

subroutine use3(c)
  integer c
  write c
end

subroutine use4(d)
  integer d
  write d
end

subroutine use5
  common /gd/ g
  integer g
  write g
end
"""

EXPECTATIONS = [
    ("use1.a (literal 42)", "use1", "a"),
    ("use2.b (computed 42)", "use2", "b"),
    ("use3.c (pass-through 13)", "use3", "c"),
    ("use4.d (polynomial 2x+1 = 27)", "use4", "d"),
    ("use5 gd.gshare (implicit global 77)", "use5", "gd.gshare"),
]


def main() -> None:
    analyzer = Analyzer(SOURCE)
    kinds = [
        JumpFunctionKind.LITERAL,
        JumpFunctionKind.INTRAPROCEDURAL,
        JumpFunctionKind.PASS_THROUGH,
        JumpFunctionKind.POLYNOMIAL,
    ]
    results = {
        kind: analyzer.run(AnalysisConfig(jump_function=kind)) for kind in kinds
    }

    width = max(len(label) for label, _, _ in EXPECTATIONS) + 2
    header = f"{'constant-flow class':<{width}}" + "".join(
        f"{kind.value:>17}" for kind in kinds
    )
    print(header)
    print("-" * len(header))
    for label, proc, key in EXPECTATIONS:
        cells = []
        for kind in kinds:
            value = results[kind].constants(proc).get(key)
            cells.append(f"{str(value) if value is not None else '—':>17}")
        print(f"{label:<{width}}" + "".join(cells))

    print()
    print("Totals (constants substituted):")
    for kind in kinds:
        print(f"  {kind.value:<16} {results[kind].constants_found}")
    print()
    print("Each implementation captures a strict superset of the previous")
    print("one (§3.1); pass-through misses only the true polynomial.")


if __name__ == "__main__":
    main()
