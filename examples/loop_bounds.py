"""The paper's motivating scenario: interprocedural constants as loop bounds.

Eigenmann and Blume observed that interprocedural constants are often loop
bounds, and that knowing them improves both dependence information and
parallelization decisions (paper §1). This example counts how many DO
loops get *compile-time-known trip counts* with and without
interprocedural constant propagation.

Run:  python examples/loop_bounds.py
"""

from repro import AnalysisConfig, JumpFunctionKind, analyze
from repro.core.lattice import is_constant
from repro.frontend import parse_program
from repro.frontend.astnodes import DoLoop, walk_stmts

SOURCE = """
program sim
  integer nx, ny, steps
  nx = 64
  ny = 32
  steps = 100
  call relax(nx, ny)
  call advance(nx, ny, steps)
end

subroutine relax(rows, cols)
  integer rows, cols, i, j
  real grid(64, 32)
  do i = 1, rows
    do j = 1, cols
      grid(i, j) = i * 0.5 + j
    enddo
  enddo
end

subroutine advance(rows, cols, nsteps)
  integer rows, cols, nsteps, t
  do t = 1, nsteps
    call relax(rows, cols)
  enddo
end
"""


def constant_bound_loops(result, use_entry_constants: bool) -> int:
    """Count DO loops whose bounds are compile-time constants."""
    program = result.program
    found = 0
    for name, procedure in program.procedures.items():
        env = {}
        if use_entry_constants:
            env = result.solved.constants(name)
        for stmt in walk_stmts(procedure.ast.body):
            if not isinstance(stmt, DoLoop):
                continue
            numbering = result.forward.numberings[name]
            ssa = result.forward.ssas[name]
            # A bound is "known" if every variable it reads is an entry
            # constant or it folds outright.
            bound_known = True
            for expr in (stmt.first, stmt.last):
                known = _expr_known(expr, env, program, name)
                if not known:
                    bound_known = False
            if bound_known:
                found += 1
    return found


def _expr_known(expr, env, program, proc_name) -> bool:
    from repro.frontend.astnodes import BinaryOp, IntLit, UnaryOp, VarRef

    if isinstance(expr, IntLit):
        return True
    if isinstance(expr, VarRef):
        symbol = program.procedures[proc_name].symtab.lookup(expr.name)
        if symbol is None:
            return False
        if symbol.const_value is not None:
            return True
        return expr.name in env and is_constant(env[expr.name])
    if isinstance(expr, BinaryOp):
        return _expr_known(expr.left, env, program, proc_name) and _expr_known(
            expr.right, env, program, proc_name
        )
    if isinstance(expr, UnaryOp):
        return _expr_known(expr.operand, env, program, proc_name)
    return False


def main() -> None:
    result = analyze(
        SOURCE, AnalysisConfig(jump_function=JumpFunctionKind.PASS_THROUGH)
    )
    without = constant_bound_loops(result, use_entry_constants=False)
    with_icp = constant_bound_loops(result, use_entry_constants=True)

    print("DO loops with compile-time-known bounds:")
    print(f"  without interprocedural constants: {without}")
    print(f"  with interprocedural constants:    {with_icp}")
    print()
    print("Known trip counts let a parallelizer decide profitability and")
    print("let the dependence analyzer treat subscripts as linear (§1).")
    for proc in ("relax", "advance"):
        print(f"  CONSTANTS({proc}) = {result.constants(proc)}")


if __name__ == "__main__":
    main()
