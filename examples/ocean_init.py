"""The ocean story: why return jump functions tripled one program's count.

The paper found return jump functions made "no noticeable difference" in
ten of thirteen programs — but more than *tripled* the constants found in
ocean, whose initialization routine assigns constant values to many COMMON
variables (§4.2). This example reproduces the effect on the generated
ocean workload and on a minimal distilled program.

Run:  python examples/ocean_init.py
"""

from repro import AnalysisConfig, Analyzer, JumpFunctionKind
from repro.workloads import load

DISTILLED = """
program tiny
  common /cfg/ nx, ny, niter
  integer nx, ny, niter
  call init
  call solve
end

subroutine init
  common /cfg/ a, b, c
  integer a, b, c
  a = 64
  b = 32
  c = 500
end

subroutine solve
  common /cfg/ rows, cols, steps
  integer rows, cols, steps, i, work
  work = 0
  do i = 1, steps
    work = work + rows * cols
  enddo
  write work
end
"""


def compare(source: str, label: str) -> None:
    analyzer = Analyzer(source)
    with_rjf = analyzer.run(AnalysisConfig(JumpFunctionKind.POLYNOMIAL))
    without = analyzer.run(
        AnalysisConfig(JumpFunctionKind.POLYNOMIAL, use_return_jump_functions=False)
    )
    ratio = (
        with_rjf.constants_found / without.constants_found
        if without.constants_found
        else float("inf")
    )
    print(f"{label}:")
    print(f"  with return jump functions:    {with_rjf.constants_found}")
    print(f"  without return jump functions: {without.constants_found}")
    print(f"  ratio: {ratio:.2f}x")
    return with_rjf


def main() -> None:
    result = compare(DISTILLED, "distilled init-routine program")
    print(f"  CONSTANTS(solve) = {result.constants('solve')}")
    print()
    print("Mechanism: init's return jump functions are R(a)=64, R(b)=32,")
    print("R(c)=500 — constants with empty support. When value numbering")
    print("reaches 'call init' in the main program, those functions supply")
    print("the globals' values, and every later call site transmits them.")
    print()
    compare(load("ocean").source, "generated 'ocean' workload (full scale)")


if __name__ == "__main__":
    main()
