program findings
  integer n, m
  common /state/ total, spare
  integer total, spare
  n = 4
  m = 7
  call swap(n, n)
  call accum(m, n)
  total = total + m
  write total
end

subroutine swap(a, b)
  integer a, b, t
  t = a
  a = b
  b = t
end

subroutine accum(x, pad)
  integer x, pad
  common /state/ sum, unused
  integer sum, unused
  sum = sum + x
end

subroutine helper(q)
  integer q
  q = q + 1
end
