program demo
  integer n, m
  common /cfg/ gmax
  integer gmax
  call setup
  n = 10
  m = n * 2 + 1
  call smooth(n, m)
  call smooth(n, m)
end

subroutine setup
  common /cfg/ g
  integer g
  g = 100
end

subroutine smooth(k, j)
  integer k, j, i, acc
  common /cfg/ lim
  integer lim
  acc = 0
  do i = 1, k
    acc = acc + j
  enddo
  if (acc > lim) then
    acc = lim
  endif
  write acc
end
