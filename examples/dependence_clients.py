"""Why compilers want interprocedural constants: the client's view.

Runs the two analyses the paper's introduction motivates ICP with — array
subscript linearity (Shen–Li–Yew) and loop parallelizability /
profitability (Eigenmann–Blume) — over a BLAS-style library, with and
without the CONSTANTS sets.

Run:  python examples/dependence_clients.py
"""

from repro import analyze
from repro.depend import classify_loops, classify_subscripts
from repro.workloads.library import library_program


def main() -> None:
    result = analyze(library_program())

    before = classify_subscripts(result, constants_env=False)
    after = classify_subscripts(result, constants_env=True)
    improved = before.nonlinear - after.nonlinear
    print("== subscript linearity (Shen–Li–Yew) ==")
    print(f"array subscripts analysed:   {before.total}")
    print(f"nonlinear without ICP:       {before.nonlinear}")
    print(f"nonlinear with ICP:          {after.nonlinear}")
    print(
        f"recovered:                   {improved} "
        f"({improved / before.nonlinear:.0%} of the nonlinear ones)"
    )
    print()
    print("still nonlinear (run-time strides — no analysis can help):")
    for site in after.nonlinear_sites()[:4]:
        print(f"  {site.procedure}: {site.array}({site.expr})")

    print()
    print("== loop classification (Eigenmann–Blume) ==")
    loops_before = classify_loops(result, constants_env=False)
    loops_after = classify_loops(result, constants_env=True)
    print(f"{'loop':<22}{'par?':>6}{'trips':>8}{'profitable':>12}")
    for was, now in zip(loops_before, loops_after):
        label = f"{now.procedure}.{now.induction_var}"
        trips = "?" if now.trip_count is None else str(now.trip_count)
        print(
            f"{label:<22}{'yes' if now.parallelizable else 'no':>6}"
            f"{trips:>8}{'yes' if now.profitable else 'no':>12}"
        )
    profitable = sum(v.profitable for v in loops_after)
    print()
    print(
        f"profitably parallel loops: 0 -> {profitable} "
        "once trip counts are interprocedural constants"
    )


if __name__ == "__main__":
    main()
