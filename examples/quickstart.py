"""Quickstart: analyze a small program and inspect what the analyzer found.

Run:  python examples/quickstart.py
"""

from repro import AnalysisConfig, JumpFunctionKind, analyze

SOURCE = """
program demo
  integer n, m
  common /cfg/ gmax
  integer gmax
  call setup
  n = 10
  m = n * 2 + 1
  call smooth(n, m)
  call smooth(n, m)
end

subroutine setup
  common /cfg/ g
  integer g
  g = 100
end

subroutine smooth(k, j)
  integer k, j, i, acc
  common /cfg/ lim
  integer lim
  acc = 0
  do i = 1, k
    acc = acc + j
  enddo
  if (acc > lim) then
    acc = lim
  endif
  write acc
end
"""


def main() -> None:
    result = analyze(
        SOURCE, AnalysisConfig(jump_function=JumpFunctionKind.PASS_THROUGH)
    )

    print("== CONSTANTS sets (what holds on every entry) ==")
    for proc, constants in result.all_constants().items():
        if constants:
            pretty = ", ".join(f"{k} = {v}" for k, v in constants.items())
            print(f"  {proc}: {pretty}")

    print()
    print(f"constants substituted (pairs):      {result.constants_found}")
    print(f"references replaced by literals:    {result.references_substituted}")

    print()
    print("== transformed source (constants spliced in) ==")
    print(result.transformed_source())


if __name__ == "__main__":
    main()
