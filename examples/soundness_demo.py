"""Differential validation: execute a workload and audit every claim.

Runs the generated 'spec77' workload under the reference interpreter,
recording the entry values of every formal and global at every procedure
invocation, then checks each CONSTANTS(p) claim from the analyzer against
every recorded snapshot (DESIGN.md §5).

Run:  python examples/soundness_demo.py
"""

from repro import AnalysisConfig, Analyzer, JumpFunctionKind
from repro.interp import check_soundness, run_program
from repro.workloads import load


def main() -> None:
    workload = load("spec77", scale=0.5)
    print(f"workload: {workload.name} ({workload.line_count} lines)")

    trace = run_program(workload.source, inputs=workload.inputs)
    invocations = sum(len(v) for v in trace.entries.values())
    print(f"executed: {trace.steps} IR steps, {invocations} procedure entries,")
    print(f"          {len(trace.outputs)} values written")

    analyzer = Analyzer(workload.source)
    result = analyzer.run(AnalysisConfig(JumpFunctionKind.PASS_THROUGH))
    claims = sum(len(result.constants(p)) for p in result.lowered.procedures)
    print(f"analyzer: {claims} (procedure, variable, value) claims")

    violations = check_soundness(result, trace)
    if violations:
        print("UNSOUND — violations:")
        for violation in violations:
            print(f"  {violation}")
        raise SystemExit(1)
    checked = sum(
        len(result.constants(p)) * len(trace.invocations(p))
        for p in result.lowered.procedures
    )
    print(f"verified: {checked} claim×invocation checks, 0 violations")

    print()
    print("Sample — the three most-constrained procedures:")
    ranked = sorted(
        ((p, result.constants(p)) for p in result.lowered.procedures),
        key=lambda pair: -len(pair[1]),
    )
    for proc, constants in ranked[:3]:
        print(f"  {proc}: {constants}")


if __name__ == "__main__":
    main()
